//! Seeded single-op corruption of compiled programs — the negative-test
//! generator behind the conformance mutation lane
//! (`conformance --mutate-bytecode N`).
//!
//! Every mutation kind here produces a program that is *definitely* wrong
//! with respect to the plan it was compiled from: a relocated offset lands
//! outside every field, a swapped comparison operator contradicts the
//! declared filter, a truncated pool orphans a live reference.  There are
//! deliberately no "maybe equivalent" mutants (no ±1 offset skews that
//! could land on a neighbouring one-byte field, no register renames that
//! could stay live) — the lane's contract is that each mutant must be
//! rejected by [`crate::verify::verify`] or fail typed at runtime, never
//! panic and never return a plausible answer, and an equivalent mutant
//! would make that gate unfalsifiable.
//!
//! The generator is deterministic: one `u64` seed drives a xorshift64*
//! stream, so a failing mutant from CI reproduces locally from its seed.

use hique_sql::ast::CmpOp;

use crate::bytecode::{Frag, Op, RhsF, RhsI};
use crate::program::{OutputOp, VmProgram};

/// One corrupted program and the human-readable description of the single
/// mutation applied to it.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// What was corrupted (kind, code position, old → new), for replay
    /// diagnostics when a mutant slips past the verifier.
    pub description: String,
    /// The corrupted program.
    pub program: VmProgram,
}

/// xorshift64* — tiny deterministic stream, no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len())])
        }
    }
}

/// An offset far past any record the workspace's schemas can produce;
/// guaranteed to land on no field boundary.
const FAR_OFFSET: u32 = 1 << 20;

/// A register index far past any bank the compiler sizes (expression
/// nesting depth bounds the bank; parser depth keeps it tiny).
const FAR_REGISTER: u8 = 200;

const KINDS: usize = 16;

/// Generate up to `count` single-mutation corruptions of `template`,
/// deterministically from `seed`.  Kinds that do not apply to the program
/// (e.g. pool truncation of a pool-free specialized program) are skipped,
/// so short programs may yield fewer than `count` mutants.
pub fn mutants(template: &VmProgram, seed: u64, count: usize) -> Vec<Mutant> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = count * 64 + 64;
    while out.len() < count && attempts < budget {
        attempts += 1;
        let mut program = template.clone();
        let kind = rng.below(KINDS);
        if let Some(description) = apply(&mut program, kind, &mut rng) {
            out.push(Mutant {
                description,
                program,
            });
        }
    }
    out
}

/// Apply one mutation of `kind`; `None` when the kind has no valid target
/// in this program.
fn apply(p: &mut VmProgram, kind: usize, rng: &mut Rng) -> Option<String> {
    match kind {
        0 => relocate_offset(p, rng),
        1 => register_out_of_bank(p, rng),
        2 => use_before_def(p, rng),
        3 => pool_index_out(p, rng),
        4 => truncate_pool(p, rng),
        5 => wrong_type_tag(p, rng),
        6 => wrong_op_kind(p, rng),
        7 => swap_cmp_op(p, rng),
        8 => tweak_constant(p, rng),
        9 => skew_copy(p, rng),
        10 => frag_out_of_range(p, rng),
        11 => corrupt_outputs(p, rng),
        12 => truncate_code(p),
        13 => fused_wrong_operand_type(p, rng),
        14 => fused_register_out_of_lattice(p, rng),
        15 => fused_pool_oob(p, rng),
        _ => None,
    }
}

fn indices_where(code: &[Op], pred: impl Fn(&Op) -> bool) -> Vec<usize> {
    code.iter()
        .enumerate()
        .filter(|(_, op)| pred(op))
        .map(|(i, _)| i)
        .collect()
}

/// Relocate a column access past every record: statically a
/// `NoFieldAtOffset`.
fn relocate_offset(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| {
        !matches!(op, Op::ConstF { .. } | Op::PoolF { .. } | Op::Arith { .. })
    });
    let &i = rng.pick(&targets)?;
    let old = match &mut p.code[i] {
        Op::TestI32 { offset, .. }
        | Op::TestI64 { offset, .. }
        | Op::TestF64 { offset, .. }
        | Op::TestBytes { offset, .. }
        | Op::LoadF { offset, .. }
        | Op::LoadI32F { offset, .. }
        | Op::LoadI64F { offset, .. }
        | Op::ImageI32 { offset }
        | Op::ImageI64 { offset }
        | Op::ImageF64 { offset }
        | Op::ImageChar { offset, .. } => {
            let old = *offset;
            *offset = FAR_OFFSET;
            old
        }
        Op::Copy { src, .. } => {
            let old = *src;
            *src = FAR_OFFSET;
            old
        }
        _ => return None,
    };
    Some(format!("op {i}: relocated offset {old} -> {FAR_OFFSET}"))
}

/// Point a register operand outside the float bank: statically a
/// `RegisterOutOfRange`.
fn register_out_of_bank(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::LoadF { .. }
                | Op::LoadI32F { .. }
                | Op::LoadI64F { .. }
                | Op::ConstF { .. }
                | Op::PoolF { .. }
                | Op::Arith { .. }
        )
    });
    let &i = rng.pick(&targets)?;
    let which = rng.below(3);
    let old = match &mut p.code[i] {
        Op::LoadF { dst, .. }
        | Op::LoadI32F { dst, .. }
        | Op::LoadI64F { dst, .. }
        | Op::ConstF { dst, .. }
        | Op::PoolF { dst, .. } => {
            let old = *dst;
            *dst = FAR_REGISTER;
            old
        }
        Op::Arith { dst, a, b, .. } => {
            let r = match which {
                0 => dst,
                1 => a,
                _ => b,
            };
            let old = *r;
            *r = FAR_REGISTER;
            old
        }
        _ => return None,
    };
    Some(format!(
        "op {i}: register r{old} -> r{FAR_REGISTER} (bank is {})",
        p.float_registers
    ))
}

/// Expression fragments of the program (aggregate arguments and output
/// expressions) — the only fragments the register machine runs.
fn expr_frags(p: &VmProgram) -> Vec<Frag> {
    let mut frags = Vec::new();
    if let Some(agg) = &p.agg {
        frags.extend(agg.args.iter().flatten().copied());
    }
    for o in &p.outputs {
        if let OutputOp::Expr(f, _) = o {
            frags.push(*f);
        }
    }
    frags.retain(|f| !f.is_empty());
    frags
}

/// Make the first op of an expression fragment read its own undefined
/// destination: statically a `UseBeforeDef`.
fn use_before_def(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let frags = expr_frags(p);
    let frag = *rng.pick(&frags)?;
    let i = frag.start as usize;
    p.code[i] = Op::Arith {
        op: hique_sql::ast::BinOp::Add,
        dst: 0,
        a: 0,
        b: 0,
    };
    Some(format!(
        "op {i}: expression fragment now opens with r0 = r0 + r0 (r0 undefined)"
    ))
}

/// Point a live pool reference past its section: statically a
/// `PoolIndexOutOfRange`.
fn pool_index_out(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::TestI32 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestI64 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestF64 {
                rhs: RhsF::Pool(_),
                ..
            } | Op::TestBytes { .. }
                | Op::PoolF { .. }
        )
    });
    let &i = rng.pick(&targets)?;
    let (ints, floats, bytes) = (p.pool.ints.len(), p.pool.floats.len(), p.pool.bytes.len());
    let detail = match &mut p.code[i] {
        Op::TestI32 { rhs, .. } | Op::TestI64 { rhs, .. } => {
            *rhs = RhsI::Pool(ints as u32 + 3);
            format!("int slot {} of {ints}", ints + 3)
        }
        Op::TestF64 { rhs, .. } => {
            *rhs = RhsF::Pool(floats as u32 + 3);
            format!("float slot {} of {floats}", floats + 3)
        }
        Op::TestBytes { pool, .. } => {
            *pool = bytes as u32 + 3;
            format!("bytes slot {} of {bytes}", bytes + 3)
        }
        Op::PoolF { idx, .. } => {
            *idx = floats as u32 + 3;
            format!("float slot {} of {floats}", floats + 3)
        }
        _ => return None,
    };
    Some(format!(
        "op {i}: pool reference past its section ({detail})"
    ))
}

/// Pop the last slot of a pool section some op still references:
/// statically a `PoolIndexOutOfRange` on that op.
fn truncate_pool(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let last_int = p.pool.ints.len().checked_sub(1).map(|s| s as u32);
    let last_float = p.pool.floats.len().checked_sub(1).map(|s| s as u32);
    let last_bytes = p.pool.bytes.len().checked_sub(1).map(|s| s as u32);
    let mut candidates = Vec::new();
    for op in &p.code {
        match *op {
            Op::TestI32 {
                rhs: RhsI::Pool(s), ..
            }
            | Op::TestI64 {
                rhs: RhsI::Pool(s), ..
            } if Some(s) == last_int => candidates.push(0),
            Op::TestF64 {
                rhs: RhsF::Pool(s), ..
            }
            | Op::PoolF { idx: s, .. }
                if Some(s) == last_float =>
            {
                candidates.push(1)
            }
            Op::TestBytes { pool: s, .. } if Some(s) == last_bytes => candidates.push(2),
            _ => {}
        }
    }
    let &section = rng.pick(&candidates)?;
    let name = match section {
        0 => {
            p.pool.ints.pop();
            "int"
        }
        1 => {
            p.pool.floats.pop();
            "float"
        }
        _ => {
            p.pool.bytes.pop();
            "bytes"
        }
    };
    Some(format!(
        "constant pool: dropped the last {name} slot while an op still references it"
    ))
}

/// Re-tag a typed column access with a different type: statically a
/// `TypeMismatch` (the field at the op's offset keeps its real type).
fn wrong_type_tag(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::TestI32 { .. }
                | Op::TestI64 { .. }
                | Op::TestF64 { .. }
                | Op::TestBytes { .. }
                | Op::LoadF { .. }
                | Op::LoadI32F { .. }
                | Op::LoadI64F { .. }
                | Op::ImageI32 { .. }
                | Op::ImageI64 { .. }
                | Op::ImageF64 { .. }
                | Op::ImageChar { .. }
        )
    });
    let &i = rng.pick(&targets)?;
    let (old, new) = match p.code[i] {
        Op::TestI32 { offset, op, .. } => (
            "test-i32",
            Op::TestF64 {
                offset,
                op,
                rhs: RhsF::Imm(0.5),
            },
        ),
        Op::TestI64 { offset, op, rhs } => ("test-i64", Op::TestI32 { offset, op, rhs }),
        Op::TestF64 { offset, op, .. } => (
            "test-f64",
            Op::TestI64 {
                offset,
                op,
                rhs: RhsI::Imm(1),
            },
        ),
        Op::TestBytes { offset, op, .. } => (
            "test-bytes",
            Op::TestI32 {
                offset,
                op,
                rhs: RhsI::Imm(0),
            },
        ),
        Op::LoadF { dst, offset } => ("load-f64", Op::LoadI32F { dst, offset }),
        Op::LoadI32F { dst, offset } => ("load-i32", Op::LoadF { dst, offset }),
        Op::LoadI64F { dst, offset } => ("load-i64", Op::LoadF { dst, offset }),
        Op::ImageI32 { offset } => ("image-i32", Op::ImageF64 { offset }),
        Op::ImageI64 { offset } => ("image-i64", Op::ImageI32 { offset }),
        Op::ImageF64 { offset } => ("image-f64", Op::ImageI64 { offset }),
        Op::ImageChar { offset, .. } => ("image-char", Op::ImageI32 { offset }),
        _ => return None,
    };
    p.code[i] = new;
    Some(format!(
        "op {i}: re-tagged a {old} access with a foreign type"
    ))
}

/// Replace an op with one from a family its fragment's interpreter loop
/// rejects: statically a `WrongOpKind`.
fn wrong_op_kind(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    if p.code.is_empty() {
        return None;
    }
    let i = rng.below(p.code.len());
    let (old, new) = match p.code[i] {
        Op::TestI32 { .. } | Op::TestI64 { .. } | Op::TestF64 { .. } | Op::TestBytes { .. } => (
            "test",
            Op::Copy {
                src: 0,
                width: 0,
                dst: 0,
            },
        ),
        Op::Copy { .. } => (
            "copy",
            Op::TestI32 {
                offset: 0,
                op: CmpOp::Eq,
                rhs: RhsI::Imm(0),
            },
        ),
        Op::ImageI32 { .. } | Op::ImageI64 { .. } | Op::ImageF64 { .. } | Op::ImageChar { .. } => (
            "image",
            Op::Copy {
                src: 0,
                width: 0,
                dst: 0,
            },
        ),
        Op::LoadF { .. }
        | Op::LoadI32F { .. }
        | Op::LoadI64F { .. }
        | Op::ConstF { .. }
        | Op::PoolF { .. }
        | Op::Arith { .. } => ("expression", Op::ImageI32 { offset: 0 }),
    };
    p.code[i] = new;
    Some(format!(
        "op {i}: replaced a {old} op with an op its fragment's loop rejects"
    ))
}

/// Swap a test's comparison operator: statically a `PlanMismatch` against
/// the declared filter.
fn swap_cmp_op(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::TestI32 { .. } | Op::TestI64 { .. } | Op::TestF64 { .. } | Op::TestBytes { .. }
        )
    });
    let &i = rng.pick(&targets)?;
    let swap = |c: CmpOp| match c {
        CmpOp::Eq => CmpOp::Lt,
        CmpOp::NotEq => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::Lt,
    };
    match &mut p.code[i] {
        Op::TestI32 { op, .. }
        | Op::TestI64 { op, .. }
        | Op::TestF64 { op, .. }
        | Op::TestBytes { op, .. } => {
            let old = *op;
            *op = swap(old);
            Some(format!(
                "op {i}: comparison operator {old:?} -> {:?}",
                swap(old)
            ))
        }
        _ => None,
    }
}

/// Nudge a folded or pooled constant: statically a `PlanMismatch` (the
/// plan's declared constant no longer matches).  Floats are bit-flipped,
/// not incremented — `x + 1.0 == x` for large `x` would be an equivalent
/// mutant.
fn tweak_constant(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let imm_targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::TestI32 {
                rhs: RhsI::Imm(_),
                ..
            } | Op::TestI64 {
                rhs: RhsI::Imm(_),
                ..
            } | Op::TestF64 {
                rhs: RhsF::Imm(_),
                ..
            }
        )
    });
    // Three target families: immediates in code, numeric pool slots
    // referenced by tests, byte-string pool slots referenced by tests.
    let mut families = Vec::new();
    if !imm_targets.is_empty() {
        families.push(0);
    }
    let pool_targets = indices_where(&p.code, |op| {
        matches!(
            op,
            Op::TestI32 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestI64 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestF64 {
                rhs: RhsF::Pool(_),
                ..
            }
        )
    });
    if !pool_targets.is_empty() {
        families.push(1);
    }
    let bytes_targets = indices_where(&p.code, |op| matches!(op, Op::TestBytes { .. }));
    if !bytes_targets.is_empty() {
        families.push(2);
    }
    match *rng.pick(&families)? {
        0 => {
            let &i = rng.pick(&imm_targets)?;
            match &mut p.code[i] {
                Op::TestI32 {
                    rhs: RhsI::Imm(v), ..
                }
                | Op::TestI64 {
                    rhs: RhsI::Imm(v), ..
                } => {
                    *v = v.wrapping_add(1);
                }
                Op::TestF64 {
                    rhs: RhsF::Imm(v), ..
                } => {
                    *v = f64::from_bits(v.to_bits() ^ 1);
                }
                _ => return None,
            }
            Some(format!("op {i}: nudged the folded immediate constant"))
        }
        1 => {
            let &i = rng.pick(&pool_targets)?;
            match p.code[i] {
                Op::TestI32 {
                    rhs: RhsI::Pool(s), ..
                }
                | Op::TestI64 {
                    rhs: RhsI::Pool(s), ..
                } => {
                    let v = &mut p.pool.ints[s as usize];
                    *v = v.wrapping_add(1);
                }
                Op::TestF64 {
                    rhs: RhsF::Pool(s), ..
                } => {
                    let v = &mut p.pool.floats[s as usize];
                    *v = f64::from_bits(v.to_bits() ^ 1);
                }
                _ => return None,
            }
            Some(format!("op {i}: nudged the pooled constant it references"))
        }
        _ => {
            let &i = rng.pick(&bytes_targets)?;
            let slot = match p.code[i] {
                Op::TestBytes { pool, .. } => pool as usize,
                _ => return None,
            };
            let bytes = &mut p.pool.bytes[slot];
            let b = bytes.first_mut()?;
            *b ^= 0x01;
            Some(format!(
                "op {i}: flipped a bit of the pooled string constant"
            ))
        }
    }
}

/// Skew a projection copy's geometry: statically a `WidthMismatch` or
/// `PlanMismatch` against the staged layout.
fn skew_copy(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = indices_where(&p.code, |op| matches!(op, Op::Copy { .. }));
    let &i = rng.pick(&targets)?;
    let which = rng.below(2);
    match &mut p.code[i] {
        Op::Copy { width, dst, .. } => {
            if which == 0 {
                *width += 4;
                Some(format!("op {i}: widened a projection copy by 4 bytes"))
            } else {
                *dst += 4;
                Some(format!(
                    "op {i}: shifted a projection copy's destination by 4"
                ))
            }
        }
        _ => None,
    }
}

/// Push a fragment's end past the code array: statically a
/// `FragOutOfRange`.
fn frag_out_of_range(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let far = p.code.len() as u32 + 3;
    let mut frags: Vec<(&'static str, &mut Frag)> = Vec::new();
    for t in &mut p.tables {
        frags.push(("staging filter", &mut t.filter));
        frags.push(("staging projection", &mut t.project));
    }
    for j in &mut p.joins {
        frags.push(("join left image", &mut j.left_image));
        frags.push(("join right image", &mut j.right_image));
    }
    for f in &mut p.team_images {
        frags.push(("team image", f));
    }
    if let Some(agg) = &mut p.agg {
        for f in &mut agg.group_images {
            frags.push(("group image", f));
        }
        for f in agg.args.iter_mut().flatten() {
            frags.push(("aggregate argument", f));
        }
    }
    for o in &mut p.outputs {
        if let OutputOp::Expr(f, _) = o {
            frags.push(("output expression", f));
        }
    }
    if frags.is_empty() {
        return None;
    }
    let i = rng.below(frags.len());
    let (name, frag) = &mut frags[i];
    frag.end = far;
    Some(format!(
        "fragment table: {name} fragment end pushed past the code array ({far})"
    ))
}

/// Corrupt the output decode table: statically an `ArityMismatch` or
/// `OutputIndexOutOfRange`.
fn corrupt_outputs(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    if p.outputs.is_empty() {
        return None;
    }
    let i = rng.below(p.outputs.len());
    match &mut p.outputs[i] {
        OutputOp::Group(idx) => {
            *idx += 17;
            Some(format!(
                "output {i}: group reference pushed past the group list"
            ))
        }
        OutputOp::Aggregate(idx) => {
            *idx += 17;
            Some(format!(
                "output {i}: aggregate reference pushed past the aggregate list"
            ))
        }
        _ => {
            p.outputs.pop();
            Some("output table: dropped the last decode entry".into())
        }
    }
}

/// Pop the final code op: the fragment it belonged to now escapes the
/// array — statically a `FragOutOfRange`.
fn truncate_code(p: &mut VmProgram) -> Option<String> {
    if p.code.is_empty() {
        return None;
    }
    p.code.pop();
    Some("code array: dropped the final op out from under its fragment".into())
}

/// Vectorized filter step slots, as `(table, step)` indices.
fn vec_filter_steps(p: &VmProgram) -> Vec<(usize, usize)> {
    p.vec
        .filters
        .iter()
        .enumerate()
        .flat_map(|(t, steps)| steps.iter().flatten().enumerate().map(move |(s, _)| (t, s)))
        .collect()
}

/// Re-tag a test inside a fused filter step with a foreign operand type,
/// leaving the scalar fragment intact: statically a `TypeMismatch` (or
/// `FusedDivergence`) on the vectorized plan.
fn fused_wrong_operand_type(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets = vec_filter_steps(p);
    let &(t, s) = rng.pick(&targets)?;
    let steps = p.vec.filters[t].as_mut()?;
    let retag = |target: &mut Op| -> Option<&'static str> {
        let (old, new) = match *target {
            Op::TestI32 { offset, op, rhs } => ("test-i32", Op::TestI64 { offset, op, rhs }),
            Op::TestI64 { offset, op, rhs } => ("test-i64", Op::TestI32 { offset, op, rhs }),
            Op::TestF64 { offset, op, .. } => (
                "test-f64",
                Op::TestI64 {
                    offset,
                    op,
                    rhs: RhsI::Imm(0),
                },
            ),
            Op::TestBytes { offset, op, .. } => (
                "test-bytes",
                Op::TestI32 {
                    offset,
                    op,
                    rhs: RhsI::Imm(0),
                },
            ),
            _ => return None,
        };
        *target = new;
        Some(old)
    };
    let old = match &mut steps[s] {
        crate::vector::VecStep::Op(a) | crate::vector::VecStep::TestTest(a, _) => retag(a)?,
        crate::vector::VecStep::LoadArith(..) => return None,
    };
    Some(format!(
        "vectorized staged[{t}] filter step {s}: re-tagged a {old} test with a foreign type"
    ))
}

/// Point a register inside a fused aggregate-argument step outside the
/// float bank, leaving the scalar fragment intact: statically a
/// `RegisterOutOfRange` on the vectorized plan.
fn fused_register_out_of_lattice(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    let targets: Vec<(usize, usize)> = p
        .vec
        .agg_args
        .iter()
        .enumerate()
        .flat_map(|(a, steps)| steps.iter().flatten().enumerate().map(move |(s, _)| (a, s)))
        .collect();
    let &(ai, s) = rng.pick(&targets)?;
    let bank = p.float_registers;
    let which = rng.below(3);
    let steps = p.vec.agg_args[ai].as_mut()?;
    let mutate_reg = |r: &mut u8| {
        let old = *r;
        *r = FAR_REGISTER;
        old
    };
    let old = match &mut steps[s] {
        crate::vector::VecStep::Op(op) => match op {
            Op::LoadF { dst, .. }
            | Op::LoadI32F { dst, .. }
            | Op::LoadI64F { dst, .. }
            | Op::ConstF { dst, .. }
            | Op::PoolF { dst, .. } => mutate_reg(dst),
            Op::Arith { dst, a, b, .. } => mutate_reg(match which {
                0 => dst,
                1 => a,
                _ => b,
            }),
            _ => return None,
        },
        crate::vector::VecStep::LoadArith(load, arith) => {
            if which == 0 {
                match load {
                    Op::LoadF { dst, .. }
                    | Op::LoadI32F { dst, .. }
                    | Op::LoadI64F { dst, .. }
                    | Op::ConstF { dst, .. }
                    | Op::PoolF { dst, .. } => mutate_reg(dst),
                    _ => return None,
                }
            } else {
                match arith {
                    Op::Arith { dst, a, .. } => mutate_reg(if which == 1 { a } else { dst }),
                    _ => return None,
                }
            }
        }
        crate::vector::VecStep::TestTest(..) => return None,
    };
    Some(format!(
        "vectorized aggregate arg {ai} step {s}: register r{old} -> r{FAR_REGISTER} \
         (bank is {bank})"
    ))
}

/// Point a pool reference inside a fused step past its section, leaving
/// the scalar fragment and the pool intact: statically a
/// `PoolIndexOutOfRange` on the vectorized plan.
fn fused_pool_oob(p: &mut VmProgram, rng: &mut Rng) -> Option<String> {
    use crate::vector::VecStep;
    let (ints, floats, bytes) = (
        p.pool.ints.len() as u32,
        p.pool.floats.len() as u32,
        p.pool.bytes.len() as u32,
    );
    let has_pool = |op: &Op| {
        matches!(
            op,
            Op::TestI32 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestI64 {
                rhs: RhsI::Pool(_),
                ..
            } | Op::TestF64 {
                rhs: RhsF::Pool(_),
                ..
            } | Op::TestBytes { .. }
                | Op::PoolF { .. }
        )
    };
    let step_has_pool = |step: &VecStep| match step {
        VecStep::Op(x) => has_pool(x),
        VecStep::TestTest(x, y) | VecStep::LoadArith(x, y) => has_pool(x) || has_pool(y),
    };
    let mut targets: Vec<(usize, usize, usize)> = Vec::new();
    for (t, steps) in p.vec.filters.iter().enumerate() {
        for (s, step) in steps.iter().flatten().enumerate() {
            if step_has_pool(step) {
                targets.push((0, t, s));
            }
        }
    }
    for (a, steps) in p.vec.agg_args.iter().enumerate() {
        for (s, step) in steps.iter().flatten().enumerate() {
            if step_has_pool(step) {
                targets.push((1, a, s));
            }
        }
    }
    let &(kind, fi, si) = rng.pick(&targets)?;
    let corrupt = |op: &mut Op| -> Option<&'static str> {
        match op {
            Op::TestI32 { rhs, .. } | Op::TestI64 { rhs, .. } if matches!(rhs, RhsI::Pool(_)) => {
                *rhs = RhsI::Pool(ints + 7);
                Some("int")
            }
            Op::TestF64 { rhs, .. } if matches!(rhs, RhsF::Pool(_)) => {
                *rhs = RhsF::Pool(floats + 7);
                Some("float")
            }
            Op::TestBytes { pool, .. } => {
                *pool = bytes + 7;
                Some("bytes")
            }
            Op::PoolF { idx, .. } => {
                *idx = floats + 7;
                Some("float")
            }
            _ => None,
        }
    };
    let step = if kind == 0 {
        &mut p.vec.filters[fi].as_mut()?[si]
    } else {
        &mut p.vec.agg_args[fi].as_mut()?[si]
    };
    let section = match step {
        VecStep::Op(x) => corrupt(x),
        VecStep::TestTest(x, y) | VecStep::LoadArith(x, y) => corrupt(x).or_else(|| corrupt(y)),
    }?;
    let frag = if kind == 0 { "filter" } else { "aggregate arg" };
    Some(format!(
        "vectorized {frag} {fi} step {si}: {section} pool reference pushed past its section"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{compile, CompileMode};
    use hique_plan::{plan_query, CatalogProvider, PlannerConfig};
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("tag", DataType::Char(4)),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..20 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 5),
                    Value::Str("AAA".into()),
                    Value::Float64(i as f64),
                ]))
                .unwrap();
        }
        for i in 0..5 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Int64(i as i64)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat.analyze_table("s").unwrap();
        cat
    }

    /// Every mutation kind produces a definitely-wrong program, so the
    /// verifier must reject every single mutant — across query shapes,
    /// compile modes and seeds.
    #[test]
    fn every_mutant_is_rejected_by_the_verifier() {
        let cat = catalog();
        for sql in [
            "select k, v from r where v < 12.5 and tag = 'AAA' order by v",
            "select r.k, s.w from r, s where r.k = s.k and s.w < 4 order by r.k, s.w",
            "select k, count(*) as n, sum(v * 2.5 + 1) as adj from r \
             where k < 4 group by k order by k",
        ] {
            let q = hique_sql::parse_query(sql).unwrap();
            let bound = hique_sql::analyze(&q, &CatalogProvider::new(&cat)).unwrap();
            let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
            let generated = hique_holistic::generate(&plan).unwrap();
            for mode in [CompileMode::Specialized, CompileMode::Pooled] {
                let template = compile(&generated, &cat, mode).unwrap();
                for seed in [1u64, 0x41_1CDE, u64::MAX] {
                    let batch = mutants(&template, seed, 48);
                    assert!(batch.len() >= 24, "mutant generation starved: {sql}");
                    for m in batch {
                        assert!(
                            crate::verify::verify(&m.program, &generated, &cat).is_err(),
                            "mutant slipped past the verifier ({sql}, {mode:?}, \
                             seed {seed}): {}",
                            m.description
                        );
                    }
                }
            }
        }
    }

    /// The stream is deterministic: one seed, one mutant sequence.
    #[test]
    fn mutant_stream_is_deterministic_per_seed() {
        let cat = catalog();
        let q = hique_sql::parse_query("select k from r where k < 3 order by k").unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        let generated = hique_holistic::generate(&plan).unwrap();
        let template = compile(&generated, &cat, CompileMode::Pooled).unwrap();
        let a: Vec<String> = mutants(&template, 7, 32)
            .into_iter()
            .map(|m| m.description)
            .collect();
        let b: Vec<String> = mutants(&template, 7, 32)
            .into_iter()
            .map(|m| m.description)
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = mutants(&template, 8, 32)
            .into_iter()
            .map(|m| m.description)
            .collect();
        assert_ne!(a, c, "different seeds should usually diverge");
    }
}
