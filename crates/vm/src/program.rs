//! Lowering a generated kernel program to bytecode.
//!
//! [`compile`] walks the rendered program ([`GeneratedQuery`]) exactly the
//! way the executor will run it — staging filters and projections per
//! table, key images per join step and team member, argument expressions
//! per aggregate, decode kernels per output column — and emits one flat
//! code array with a fragment table over it.  The walk is canonical: the
//! same plan shape always produces the same instruction sequence and the
//! same constant-pool extraction order, which is what makes a
//! [`CompileMode::Pooled`] program a rebindable template for its whole
//! `shape_class`.
//!
//! Rebinding ([`VmProgram::bind`]) is guarded by a *plan-shape signature*:
//! a structural hash of everything the bytecode's offsets and fragment
//! layout depend on (schemas, kept columns, join order and key columns,
//! aggregate and output structure) and nothing they do not (constant
//! values, cardinality estimates, algorithm choices).  Two queries of one
//! shape class that re-plan to the same structure share one compiled
//! program; a class-mate whose constants change the join order simply
//! falls back to a fresh compile.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use hique_holistic::kernel::{CompiledExpr, CompiledKey};
use hique_holistic::{GeneratedQuery, OutputKernel};
use hique_sql::analyze::ScalarExpr;
use hique_storage::Catalog;
use hique_types::{DataType, HiqueError, Result, Schema};

use crate::bytecode::{ConstPool, Frag, Op, RhsF, RhsI};

/// Constant-handling strategy of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileMode {
    /// Numeric constants folded into the instructions as immediates — the
    /// paper's per-query specialization (string constants stay pooled;
    /// they are compared by reference).
    Specialized,
    /// All constants in the pool: the program is a template shared by its
    /// shape class and rebound per query via [`VmProgram::bind`].
    Pooled,
}

/// Staging fragments of one input table.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableFrags {
    /// Conjunctive predicate tests over the base record.
    pub filter: Frag,
    /// Byte-range copies building the projected record.
    pub project: Frag,
}

/// Key-image fragments of one binary join step.
#[derive(Debug, Clone, Copy)]
pub struct JoinFrags {
    /// Image of the left (accumulated intermediate) key column.
    pub left_image: Frag,
    /// Image of the right (staged input) key column.
    pub right_image: Frag,
}

/// Aggregation fragments.
#[derive(Debug, Clone, Default)]
pub struct AggFrags {
    /// One image fragment per grouping column (over the joined schema).
    pub group_images: Vec<Frag>,
    /// One argument expression per aggregate; `None` for `COUNT(*)`.
    pub args: Vec<Option<Frag>>,
}

/// How one output column is decoded.
#[derive(Debug, Clone)]
pub enum OutputOp {
    /// Decode the column at the key's offset (any type).
    Column(CompiledKey),
    /// Evaluate a bytecode expression and cast to the output type.
    Expr(Frag, DataType),
    /// The `i`-th grouping column of the aggregation output.
    Group(usize),
    /// The `i`-th aggregate of the aggregation output.
    Aggregate(usize),
}

/// A compiled bytecode program: code, constants and the fragment table.
///
/// The program is pure code — it holds no plan. Execution takes the
/// [`GeneratedQuery`] it was compiled from (or any shape-compatible one
/// after [`VmProgram::bind`]); the signature check at execution time makes
/// a mismatch a typed error instead of undefined decoding.
#[derive(Debug, Clone)]
pub struct VmProgram {
    pub(crate) mode: CompileMode,
    pub(crate) code: Vec<Op>,
    pub(crate) pool: ConstPool,
    /// Indexed by staged-table position in the plan.
    pub(crate) tables: Vec<TableFrags>,
    /// Indexed by join-step position.
    pub(crate) joins: Vec<JoinFrags>,
    /// One image fragment per join-team member (empty without a team).
    pub(crate) team_images: Vec<Frag>,
    pub(crate) agg: Option<AggFrags>,
    pub(crate) outputs: Vec<OutputOp>,
    pub(crate) float_registers: usize,
    pub(crate) signature: u64,
    /// Human-readable structural components behind `signature`, in hash
    /// order — kept so a rebind against a diverged plan can name the first
    /// component that differs instead of reporting a bare hash mismatch.
    pub(crate) structure: Vec<String>,
    pub(crate) compile_cost: Duration,
    pub(crate) verify_cost: Duration,
    /// The vectorized tier's fused lowering of the filter and aggregate-
    /// argument fragments, built *after* constant folding (the steps copy
    /// the folded ops) in both [`compile`] and [`VmProgram::bind`] and
    /// checked by the verifier against the scalar fragments.
    pub(crate) vec: crate::vector::VecPlan,
}

impl VmProgram {
    /// The constant-handling mode this program was compiled in.
    pub fn mode(&self) -> CompileMode {
        self.mode
    }

    /// The plan-shape signature this program is bound to.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Wall time spent compiling (or rebinding) this program — the
    /// bytecode share of the paper's Table III preparation cost.
    pub fn compile_cost(&self) -> Duration {
        self.compile_cost
    }

    /// Wall time spent statically verifying this program (included in
    /// [`VmProgram::compile_cost`]; reported separately so the prepare-cost
    /// figures can show the verifier's share).
    pub fn verify_cost(&self) -> Duration {
        self.verify_cost
    }

    /// Re-run the static verifier against the query this program claims to
    /// implement.  [`compile`] and [`VmProgram::bind`] already verify
    /// unconditionally; this re-check exists for external callers (plan
    /// caches, the conformance mutation lane).
    pub fn verify(
        &self,
        generated: &GeneratedQuery,
        catalog: &Catalog,
    ) -> std::result::Result<(), crate::verify::VerifyError> {
        crate::verify::verify(self, generated, catalog)
    }

    /// Total instructions in the code array.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Float registers one evaluation frame needs.
    pub fn float_registers(&self) -> usize {
        self.float_registers
    }

    /// Whether any instruction still references the constant pool (always
    /// `true` for pooled programs with constants; `false` for specialized
    /// programs unless they carry string constants, which stay pooled).
    pub fn has_pool_refs(&self) -> bool {
        self.code.iter().any(|op| {
            matches!(
                op,
                Op::TestI32 {
                    rhs: RhsI::Pool(_),
                    ..
                } | Op::TestI64 {
                    rhs: RhsI::Pool(_),
                    ..
                } | Op::TestF64 {
                    rhs: RhsF::Pool(_),
                    ..
                } | Op::PoolF { .. }
            )
        })
    }

    /// Rebind a pooled template to another query of the same plan shape:
    /// swap in `generated`'s constants and fold them to immediates.  The
    /// result is a [`CompileMode::Specialized`] program for `generated`,
    /// produced without re-lowering any code.  Typed errors when `self` is
    /// not a template or the plan shapes diverge.
    pub fn bind(&self, generated: &GeneratedQuery, catalog: &Catalog) -> Result<VmProgram> {
        let started = Instant::now();
        if self.mode != CompileMode::Pooled {
            return Err(HiqueError::Codegen(
                "only pooled templates can be rebound".into(),
            ));
        }
        let sig = plan_signature(generated, catalog)?;
        if sig != self.signature {
            return Err(structure_divergence(
                &self.structure,
                &plan_structure(generated, catalog)?,
            ));
        }
        let pool = collect_pool(generated, catalog)?;
        if !self.pool.same_shape(&pool) {
            return Err(HiqueError::Unsupported(
                "constant vector shape diverged from the cached template".into(),
            ));
        }
        let mut rebound = self.clone();
        rebound.mode = CompileMode::Specialized;
        rebound.pool = pool;
        fold_constants(&mut rebound.code, &rebound.pool);
        // The fused steps hold copies of the ops; rebuild them from the
        // freshly folded code so the vectorized tier runs the rebound
        // constants, not the template's.
        rebound.vec =
            crate::vector::build_vec_plan(&rebound.code, &rebound.tables, rebound.agg.as_ref());
        let verify_started = Instant::now();
        crate::verify::verify(&rebound, generated, catalog)?;
        rebound.verify_cost = verify_started.elapsed();
        rebound.compile_cost = started.elapsed();
        Ok(rebound)
    }
}

/// Compile the rendered kernel program into bytecode.
///
/// The catalog supplies base-table schemas (filters run over base records,
/// before projection, exactly like the static staging kernels).
pub fn compile(
    generated: &GeneratedQuery,
    catalog: &Catalog,
    mode: CompileMode,
) -> Result<VmProgram> {
    let started = Instant::now();
    let plan = generated.plan();
    let mut b = Builder::default();

    // Staging fragments, in staged-table order (canonical, independent of
    // the join order the executor stages in).
    let mut tables = Vec::with_capacity(plan.staged.len());
    for staged in &plan.staged {
        let base = catalog.table(&staged.table_name)?.heap.schema().clone();
        let filter_start = b.pc();
        for f in &staged.filters {
            b.emit_test(&base, f)?;
        }
        let filter = b.frag(filter_start);
        let project_start = b.pc();
        let mut dst = 0u32;
        for &c in &staged.keep {
            let width = base.column(c).dtype.width() as u32;
            b.code.push(Op::Copy {
                src: base.offset(c) as u32,
                width,
                dst,
            });
            dst += width;
        }
        let project = b.frag(project_start);
        tables.push(TableFrags { filter, project });
    }

    // Join-step key images over the accumulating intermediate schema.
    let mut joins = Vec::with_capacity(plan.joins.len());
    if !plan.joins.is_empty() {
        let mut current = plan.staged[plan.join_order[0]].schema.clone();
        for step in &plan.joins {
            let right = &plan.staged[step.right].schema;
            let left_image = b.emit_image(&current, step.left_key);
            let right_image = b.emit_image(right, step.right_key);
            joins.push(JoinFrags {
                left_image,
                right_image,
            });
            current = current.join(right);
        }
    }

    // Team-member key images (the executor synthesizes the team as a
    // cascade of hash joins on the shared key).
    let mut team_images = Vec::new();
    if let Some(team) = &plan.join_team {
        for (&m, &kc) in team.members.iter().zip(&team.key_columns) {
            team_images.push(b.emit_image(&plan.staged[m].schema, kc));
        }
    }

    // Aggregation fragments over the joined schema.
    let agg = match &plan.aggregate {
        Some(spec) => {
            let mut frags = AggFrags::default();
            for &g in &spec.group_columns {
                frags
                    .group_images
                    .push(b.emit_image(&plan.joined_schema, g));
            }
            for a in &spec.aggregates {
                frags.args.push(match &a.arg {
                    Some(e) => Some(b.emit_scalar_expr(e, &plan.joined_schema)?),
                    None => None,
                });
            }
            Some(frags)
        }
        None => None,
    };

    // Output decode kernels, lowered from the generator's output kernels.
    let mut outputs = Vec::with_capacity(generated.outputs().len());
    for kernel in generated.outputs() {
        outputs.push(match kernel {
            OutputKernel::Column(key) => OutputOp::Column(*key),
            OutputKernel::Expr(expr, dtype) => {
                let frag = b.emit_compiled_expr(expr)?;
                OutputOp::Expr(frag, *dtype)
            }
            OutputKernel::GroupPosition(p) => OutputOp::Group(*p),
            OutputKernel::AggregatePosition(i) => OutputOp::Aggregate(*i),
        });
    }

    let mut program = VmProgram {
        mode,
        code: b.code,
        pool: b.pool,
        tables,
        joins,
        team_images,
        agg,
        outputs,
        float_registers: b.max_regs.max(1),
        signature: plan_signature(generated, catalog)?,
        structure: plan_structure(generated, catalog)?,
        compile_cost: Duration::ZERO,
        verify_cost: Duration::ZERO,
        vec: crate::vector::VecPlan::default(),
    };
    if mode == CompileMode::Specialized {
        fold_constants(&mut program.code, &program.pool);
    }
    // Peephole-fuse after folding so the vectorized steps carry the final
    // (specialized) ops.
    program.vec =
        crate::vector::build_vec_plan(&program.code, &program.tables, program.agg.as_ref());
    let verify_started = Instant::now();
    crate::verify::verify(&program, generated, catalog)?;
    program.verify_cost = verify_started.elapsed();
    program.compile_cost = started.elapsed();
    Ok(program)
}

/// The typed divergence error for a rebind whose plan-shape signature does
/// not match the template: name the first structural component that
/// differs (by hash-order index) instead of reporting a bare mismatch.
fn structure_divergence(template: &[String], candidate: &[String]) -> HiqueError {
    for (i, (a, b)) in template.iter().zip(candidate).enumerate() {
        if a != b {
            return HiqueError::Unsupported(format!(
                "plan shape diverged from the cached template at component {i}: \
                 template has [{a}], query has [{b}]; full compile required"
            ));
        }
    }
    if template.len() != candidate.len() {
        let i = template.len().min(candidate.len());
        return HiqueError::Unsupported(format!(
            "plan shape diverged from the cached template at component {i}: \
             template has {} components, query has {}; full compile required",
            template.len(),
            candidate.len()
        ));
    }
    // Signatures differ but every component label agrees — the divergence
    // is below the label granularity (e.g. a base-schema change the labels
    // summarize); fall back to the generic message.
    HiqueError::Unsupported(
        "plan shape diverged from the cached template; full compile required".into(),
    )
}

/// Rewrite pooled numeric operands into immediates (string constants stay
/// pooled — they are compared by reference, never copied into code).
fn fold_constants(code: &mut [Op], pool: &ConstPool) {
    for op in code.iter_mut() {
        match op {
            Op::TestI32 { rhs, .. } | Op::TestI64 { rhs, .. } => {
                if let RhsI::Pool(i) = *rhs {
                    *rhs = RhsI::Imm(pool.ints[i as usize]);
                }
            }
            Op::TestF64 { rhs, .. } => {
                if let RhsF::Pool(i) = *rhs {
                    *rhs = RhsF::Imm(pool.floats[i as usize]);
                }
            }
            Op::PoolF { dst, idx } => {
                *op = Op::ConstF {
                    dst: *dst,
                    value: pool.floats[*idx as usize],
                };
            }
            _ => {}
        }
    }
}

/// Emission state: the growing code array, pool, and register high-water.
#[derive(Default)]
struct Builder {
    code: Vec<Op>,
    pool: ConstPool,
    max_regs: usize,
}

impl Builder {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn frag(&self, start: u32) -> Frag {
        Frag {
            start,
            end: self.pc(),
        }
    }

    /// One predicate test, typed by the base column (mirrors the static
    /// `CompiledFilter::compile` constant conversions exactly).
    fn emit_test(&mut self, base: &Schema, f: &hique_sql::analyze::ColumnFilter) -> Result<()> {
        let offset = base.offset(f.column) as u32;
        let op = match base.column(f.column).dtype {
            DataType::Int32 | DataType::Date => Op::TestI32 {
                offset,
                op: f.op,
                rhs: RhsI::Pool(self.pool.push_int(f.value.as_i64()? as i32 as i64)),
            },
            DataType::Int64 => Op::TestI64 {
                offset,
                op: f.op,
                rhs: RhsI::Pool(self.pool.push_int(f.value.as_i64()?)),
            },
            DataType::Float64 => Op::TestF64 {
                offset,
                op: f.op,
                rhs: RhsF::Pool(self.pool.push_float(f.value.as_f64()?)),
            },
            DataType::Char(w) => {
                let s = f.value.as_str().ok_or_else(|| {
                    HiqueError::Codegen("string filter on non-string constant".into())
                })?;
                let mut bytes = s.as_bytes().to_vec();
                bytes.resize(w as usize, b' ');
                Op::TestBytes {
                    offset,
                    width: w as u32,
                    op: f.op,
                    pool: self.pool.push_bytes(bytes),
                }
            }
        };
        self.code.push(op);
        Ok(())
    }

    /// One key-image instruction for `column` of `schema`.
    fn emit_image(&mut self, schema: &Schema, column: usize) -> Frag {
        let start = self.pc();
        let offset = schema.offset(column) as u32;
        let col = schema.column(column);
        self.code.push(match col.dtype {
            DataType::Int32 | DataType::Date => Op::ImageI32 { offset },
            DataType::Int64 => Op::ImageI64 { offset },
            DataType::Float64 => Op::ImageF64 { offset },
            DataType::Char(w) => Op::ImageChar {
                offset,
                width: w as u32,
            },
        });
        self.frag(start)
    }

    /// Lower an analyzed scalar expression (aggregate arguments).
    fn emit_scalar_expr(&mut self, expr: &ScalarExpr, schema: &Schema) -> Result<Frag> {
        let start = self.pc();
        self.lower_scalar(expr, schema, 0)?;
        Ok(self.frag(start))
    }

    fn lower_scalar(&mut self, expr: &ScalarExpr, schema: &Schema, reg: u8) -> Result<()> {
        self.max_regs = self.max_regs.max(reg as usize + 1);
        match expr {
            ScalarExpr::Column { index, dtype } => {
                let offset = schema.offset(*index) as u32;
                self.code.push(match dtype {
                    DataType::Int32 | DataType::Date => Op::LoadI32F { dst: reg, offset },
                    DataType::Int64 => Op::LoadI64F { dst: reg, offset },
                    DataType::Float64 => Op::LoadF { dst: reg, offset },
                    DataType::Char(_) => {
                        return Err(HiqueError::Codegen(
                            "string column in arithmetic expression".into(),
                        ))
                    }
                });
            }
            ScalarExpr::Literal(v) => {
                let idx = self.pool.push_float(v.as_f64()?);
                self.code.push(Op::PoolF { dst: reg, idx });
            }
            ScalarExpr::Binary {
                op, left, right, ..
            } => {
                self.lower_scalar(left, schema, reg)?;
                self.lower_scalar(right, schema, reg + 1)?;
                self.code.push(Op::Arith {
                    op: *op,
                    dst: reg,
                    a: reg,
                    b: reg + 1,
                });
            }
        }
        Ok(())
    }

    /// Lower an already-instantiated kernel expression (output kernels).
    fn emit_compiled_expr(&mut self, expr: &CompiledExpr) -> Result<Frag> {
        let start = self.pc();
        self.lower_compiled(expr, 0)?;
        Ok(self.frag(start))
    }

    fn lower_compiled(&mut self, expr: &CompiledExpr, reg: u8) -> Result<()> {
        self.max_regs = self.max_regs.max(reg as usize + 1);
        match expr {
            CompiledExpr::ColI32(off) => self.code.push(Op::LoadI32F {
                dst: reg,
                offset: *off as u32,
            }),
            CompiledExpr::ColI64(off) => self.code.push(Op::LoadI64F {
                dst: reg,
                offset: *off as u32,
            }),
            CompiledExpr::ColF64(off) => self.code.push(Op::LoadF {
                dst: reg,
                offset: *off as u32,
            }),
            CompiledExpr::Const(c) => {
                let idx = self.pool.push_float(*c);
                self.code.push(Op::PoolF { dst: reg, idx });
            }
            CompiledExpr::Bin { op, left, right } => {
                self.lower_compiled(left, reg)?;
                self.lower_compiled(right, reg + 1)?;
                self.code.push(Op::Arith {
                    op: *op,
                    dst: reg,
                    a: reg,
                    b: reg + 1,
                });
            }
        }
        Ok(())
    }
}

/// Extract the constant pool `generated` would compile to, following the
/// exact emission walk of [`compile`] — the canonical constant vector of
/// the query within its shape class.
pub fn collect_pool(generated: &GeneratedQuery, catalog: &Catalog) -> Result<ConstPool> {
    let plan = generated.plan();
    let mut pool = ConstPool::default();
    for staged in &plan.staged {
        let info = catalog.table(&staged.table_name)?;
        let base = info.heap.schema();
        for f in &staged.filters {
            match base.column(f.column).dtype {
                DataType::Int32 | DataType::Date => {
                    pool.push_int(f.value.as_i64()? as i32 as i64);
                }
                DataType::Int64 => {
                    pool.push_int(f.value.as_i64()?);
                }
                DataType::Float64 => {
                    pool.push_float(f.value.as_f64()?);
                }
                DataType::Char(w) => {
                    let s = f.value.as_str().ok_or_else(|| {
                        HiqueError::Codegen("string filter on non-string constant".into())
                    })?;
                    let mut bytes = s.as_bytes().to_vec();
                    bytes.resize(w as usize, b' ');
                    pool.push_bytes(bytes);
                }
            }
        }
    }
    if let Some(spec) = &plan.aggregate {
        for a in &spec.aggregates {
            if let Some(e) = &a.arg {
                collect_scalar_literals(e, &mut pool)?;
            }
        }
    }
    for kernel in generated.outputs() {
        if let OutputKernel::Expr(expr, _) = kernel {
            collect_compiled_literals(expr, &mut pool);
        }
    }
    Ok(pool)
}

fn collect_scalar_literals(expr: &ScalarExpr, pool: &mut ConstPool) -> Result<()> {
    match expr {
        ScalarExpr::Column { .. } => {}
        ScalarExpr::Literal(v) => {
            pool.push_float(v.as_f64()?);
        }
        ScalarExpr::Binary { left, right, .. } => {
            collect_scalar_literals(left, pool)?;
            collect_scalar_literals(right, pool)?;
        }
    }
    Ok(())
}

fn collect_compiled_literals(expr: &CompiledExpr, pool: &mut ConstPool) {
    match expr {
        CompiledExpr::Const(c) => {
            pool.push_float(*c);
        }
        CompiledExpr::Bin { left, right, .. } => {
            collect_compiled_literals(left, pool);
            collect_compiled_literals(right, pool);
        }
        _ => {}
    }
}

fn dtype_tag(d: DataType) -> (u8, u32) {
    match d {
        DataType::Int32 => (0, 0),
        DataType::Int64 => (1, 0),
        DataType::Float64 => (2, 0),
        DataType::Date => (3, 0),
        DataType::Char(w) => (4, w as u32),
    }
}

fn hash_scalar_structure(expr: &ScalarExpr, h: &mut DefaultHasher) {
    match expr {
        ScalarExpr::Column { index, dtype } => {
            0u8.hash(h);
            index.hash(h);
            dtype_tag(*dtype).hash(h);
        }
        // Literal *presence* is structural; the value is a pool constant.
        ScalarExpr::Literal(_) => 1u8.hash(h),
        ScalarExpr::Binary {
            op, left, right, ..
        } => {
            2u8.hash(h);
            (*op as u8).hash(h);
            hash_scalar_structure(left, h);
            hash_scalar_structure(right, h);
        }
    }
}

fn hash_compiled_structure(expr: &CompiledExpr, h: &mut DefaultHasher) {
    match expr {
        CompiledExpr::ColI32(off) => (0u8, *off).hash(h),
        CompiledExpr::ColI64(off) => (1u8, *off).hash(h),
        CompiledExpr::ColF64(off) => (2u8, *off).hash(h),
        CompiledExpr::Const(_) => 3u8.hash(h),
        CompiledExpr::Bin { op, left, right } => {
            4u8.hash(h);
            (*op as u8).hash(h);
            hash_compiled_structure(left, h);
            hash_compiled_structure(right, h);
        }
    }
}

fn scalar_shape(expr: &ScalarExpr) -> String {
    match expr {
        ScalarExpr::Column { index, dtype } => format!("col{index}:{dtype:?}"),
        ScalarExpr::Literal(_) => "lit".into(),
        ScalarExpr::Binary {
            op, left, right, ..
        } => format!("({} {op:?} {})", scalar_shape(left), scalar_shape(right)),
    }
}

fn compiled_shape(expr: &CompiledExpr) -> String {
    match expr {
        CompiledExpr::ColI32(off) => format!("i32@{off}"),
        CompiledExpr::ColI64(off) => format!("i64@{off}"),
        CompiledExpr::ColF64(off) => format!("f64@{off}"),
        CompiledExpr::Const(_) => "const".into(),
        CompiledExpr::Bin { op, left, right } => {
            format!(
                "({} {op:?} {})",
                compiled_shape(left),
                compiled_shape(right)
            )
        }
    }
}

/// The human-readable components of the plan-shape signature, in hash
/// order — one label per structural element [`plan_signature`] hashes
/// (and nothing it does not).  Two plans with equal signatures produce
/// equal component lists; a diverged rebind diffs the lists to name the
/// first mismatching component.
pub fn plan_structure(generated: &GeneratedQuery, catalog: &Catalog) -> Result<Vec<String>> {
    let plan = generated.plan();
    let mut parts = Vec::new();
    for (t, staged) in plan.staged.iter().enumerate() {
        let base = catalog.table(&staged.table_name)?.heap.schema().clone();
        let cols: Vec<String> = base
            .columns()
            .iter()
            .map(|c| format!("{:?}", c.dtype))
            .collect();
        let filters: Vec<String> = staged
            .filters
            .iter()
            .map(|f| format!("col{} {:?}", f.column, f.op))
            .collect();
        parts.push(format!(
            "staged[{t}]: table={} keep={:?} base=[{}] filters=[{}]",
            staged.table_name,
            staged.keep,
            cols.join(", "),
            filters.join(", ")
        ));
    }
    parts.push(format!("join order: {:?}", plan.join_order));
    for (i, step) in plan.joins.iter().enumerate() {
        parts.push(format!(
            "join[{i}]: right={} left_key={} right_key={}",
            step.right, step.left_key, step.right_key
        ));
    }
    parts.push(match &plan.join_team {
        Some(team) => format!(
            "team: members={:?} keys={:?}",
            team.members, team.key_columns
        ),
        None => "team: none".into(),
    });
    match &plan.aggregate {
        Some(spec) => {
            parts.push(format!("group columns: {:?}", spec.group_columns));
            for (i, a) in spec.aggregates.iter().enumerate() {
                parts.push(format!(
                    "aggregate[{i}]: {:?}:{:?} arg={}",
                    a.func,
                    a.dtype,
                    a.arg
                        .as_ref()
                        .map(scalar_shape)
                        .unwrap_or_else(|| "*".into())
                ));
            }
        }
        None => parts.push("aggregate: none".into()),
    }
    for (k, kernel) in generated.outputs().iter().enumerate() {
        parts.push(match kernel {
            OutputKernel::Column(key) => format!(
                "output[{k}]: column {:?} at offset {} width {}",
                key.dtype, key.offset, key.width
            ),
            OutputKernel::Expr(expr, dtype) => {
                format!("output[{k}]: expr {} as {dtype:?}", compiled_shape(expr))
            }
            OutputKernel::GroupPosition(p) => format!("output[{k}]: group {p}"),
            OutputKernel::AggregatePosition(i) => format!("output[{k}]: aggregate {i}"),
        });
    }
    Ok(parts)
}

/// The plan-shape signature: a structural hash of everything the compiled
/// bytecode's offsets and fragment layout depend on — base and staged
/// schemas, kept columns, filter structure (column/operator, not values),
/// join order and key columns, team layout, aggregate and output
/// structure.  Deliberately excludes constant values, cardinality
/// estimates, staging strategies and algorithm choices: those vary within
/// a shape class without invalidating the code.
pub fn plan_signature(generated: &GeneratedQuery, catalog: &Catalog) -> Result<u64> {
    let plan = generated.plan();
    let mut h = DefaultHasher::new();
    plan.staged.len().hash(&mut h);
    for staged in &plan.staged {
        staged.table_name.hash(&mut h);
        staged.keep.hash(&mut h);
        let base = catalog.table(&staged.table_name)?.heap.schema().clone();
        for col in base.columns() {
            dtype_tag(col.dtype).hash(&mut h);
        }
        staged.filters.len().hash(&mut h);
        for f in &staged.filters {
            f.column.hash(&mut h);
            (f.op as u8).hash(&mut h);
        }
    }
    plan.join_order.hash(&mut h);
    plan.joins.len().hash(&mut h);
    for step in &plan.joins {
        (step.right, step.left_key, step.right_key).hash(&mut h);
    }
    match &plan.join_team {
        Some(team) => {
            1u8.hash(&mut h);
            team.members.hash(&mut h);
            team.key_columns.hash(&mut h);
        }
        None => 0u8.hash(&mut h),
    }
    match &plan.aggregate {
        Some(spec) => {
            1u8.hash(&mut h);
            spec.group_columns.hash(&mut h);
            spec.aggregates.len().hash(&mut h);
            for a in &spec.aggregates {
                (a.func as u8).hash(&mut h);
                dtype_tag(a.dtype).hash(&mut h);
                match &a.arg {
                    Some(e) => {
                        1u8.hash(&mut h);
                        hash_scalar_structure(e, &mut h);
                    }
                    None => 0u8.hash(&mut h),
                }
            }
        }
        None => 0u8.hash(&mut h),
    }
    generated.outputs().len().hash(&mut h);
    for kernel in generated.outputs() {
        match kernel {
            OutputKernel::Column(key) => {
                (0u8, key.offset, key.width).hash(&mut h);
                dtype_tag(key.dtype).hash(&mut h);
            }
            OutputKernel::Expr(expr, dtype) => {
                1u8.hash(&mut h);
                dtype_tag(*dtype).hash(&mut h);
                hash_compiled_structure(expr, &mut h);
            }
            OutputKernel::GroupPosition(p) => (2u8, *p).hash(&mut h),
            OutputKernel::AggregatePosition(i) => (3u8, *i).hash(&mut h),
        }
    }
    Ok(h.finish())
}
