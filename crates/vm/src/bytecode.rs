//! The bytecode ISA and its interpreter.
//!
//! The instruction set is shaped by the kernels the generator emits
//! (DESIGN.md §2): predicate *tests* with baked-in offsets and constants,
//! byte-range *copies* for staging projections, a small register machine
//! for arithmetic expressions, and key-*image* loads producing the same
//! order-preserving `i64` images the statically compiled kernels use for
//! hashing and partitioning.  A program is one flat `Vec<Op>`; the
//! compiler hands out [`Frag`] ranges (filter fragment, projection
//! fragment, per-aggregate argument fragment, …) into it.
//!
//! Constants appear in two forms.  In [`CompileMode::Specialized`]
//! programs numeric constants are immediates folded into the instruction —
//! the specialization the paper obtains by running `gcc` on per-query C
//! source.  In [`CompileMode::Pooled`] programs they are slots of a
//! [`ConstPool`], so one compiled program can be rebound to any query of
//! the same shape class by swapping the pool (plan-cache template
//! sharing).  String constants always live in the pool: they are compared
//! by reference, never loaded into a register.
//!
//! [`CompileMode::Specialized`]: crate::CompileMode::Specialized
//! [`CompileMode::Pooled`]: crate::CompileMode::Pooled

use hique_sql::ast::{BinOp, CmpOp};
use hique_types::tuple::{read_f64_at, read_i32_at, read_i64_at};

/// Integer right-hand operand: an immediate (specialized) or a constant
/// pool slot (shared template).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RhsI {
    /// Constant folded into the instruction.
    Imm(i64),
    /// Index into [`ConstPool::ints`].
    Pool(u32),
}

/// Float right-hand operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RhsF {
    /// Constant folded into the instruction.
    Imm(f64),
    /// Index into [`ConstPool::floats`].
    Pool(u32),
}

/// One bytecode instruction.
///
/// Register indexes address the per-thread `f64` bank sized by
/// [`crate::VmProgram::float_registers`]; key images and test results do
/// not use registers (tests short-circuit the fragment, images return
/// their value directly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Predicate: `i32` column at `offset` compared with `rhs` (also used
    /// for dates, which are day-number `i32`s on disk).
    TestI32 { offset: u32, op: CmpOp, rhs: RhsI },
    /// Predicate: `i64` column at `offset` compared with `rhs`.
    TestI64 { offset: u32, op: CmpOp, rhs: RhsI },
    /// Predicate: `f64` column at `offset` compared with `rhs` under IEEE
    /// total order (matching the static kernels).
    TestF64 { offset: u32, op: CmpOp, rhs: RhsF },
    /// Predicate: fixed-width string at `offset` compared bytewise with
    /// the space-padded constant in [`ConstPool::bytes`] slot `pool`.
    TestBytes {
        offset: u32,
        width: u32,
        op: CmpOp,
        pool: u32,
    },
    /// Projection: copy `width` record bytes from `src` to output `dst`.
    Copy { src: u32, width: u32, dst: u32 },
    /// Load the `f64` column at `offset` into register `dst`.
    LoadF { dst: u8, offset: u32 },
    /// Load the `i32`/date column at `offset` into register `dst` as `f64`.
    LoadI32F { dst: u8, offset: u32 },
    /// Load the `i64` column at `offset` into register `dst` as `f64`.
    LoadI64F { dst: u8, offset: u32 },
    /// Load an immediate into register `dst`.
    ConstF { dst: u8, value: f64 },
    /// Load [`ConstPool::floats`] slot `idx` into register `dst`.
    PoolF { dst: u8, idx: u32 },
    /// `dst = a <op> b` over the float bank.
    Arith { op: BinOp, dst: u8, a: u8, b: u8 },
    /// Key image of the `i32`/date column at `offset`.
    ImageI32 { offset: u32 },
    /// Key image of the `i64` column at `offset`.
    ImageI64 { offset: u32 },
    /// Key image of the `f64` column at `offset` (order-preserving map of
    /// the IEEE bits, identical to the static kernels').
    ImageF64 { offset: u32 },
    /// Key image of the fixed-width string at `offset`: first
    /// `min(width, 8)` bytes, big-endian.
    ImageChar { offset: u32, width: u32 },
}

/// The constant pool of a compiled program: every literal the query text
/// carried, in the canonical extraction order.  Two queries of one shape
/// class compile to identical code and differ only in this pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstPool {
    /// Integer constants (filter operands for `i32`/`i64`/date columns).
    pub ints: Vec<i64>,
    /// Float constants (filter operands and expression literals).
    pub floats: Vec<f64>,
    /// String constants, space-padded to their column width.
    pub bytes: Vec<Vec<u8>>,
}

impl ConstPool {
    /// Append an integer constant, returning its slot.
    pub fn push_int(&mut self, v: i64) -> u32 {
        self.ints.push(v);
        (self.ints.len() - 1) as u32
    }

    /// Append a float constant, returning its slot.
    pub fn push_float(&mut self, v: f64) -> u32 {
        self.floats.push(v);
        (self.floats.len() - 1) as u32
    }

    /// Append a byte-string constant, returning its slot.
    pub fn push_bytes(&mut self, v: Vec<u8>) -> u32 {
        self.bytes.push(v);
        (self.bytes.len() - 1) as u32
    }

    /// Whether `other` has the same slot counts (and byte widths) — the
    /// precondition for rebinding a pooled template to `other`'s values.
    pub fn same_shape(&self, other: &ConstPool) -> bool {
        self.ints.len() == other.ints.len()
            && self.floats.len() == other.floats.len()
            && self.bytes.len() == other.bytes.len()
            && self
                .bytes
                .iter()
                .zip(&other.bytes)
                .all(|(a, b)| a.len() == b.len())
    }
}

/// A fragment: a half-open range of instructions in the shared code array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Frag {
    /// First instruction.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
}

impl Frag {
    /// The instructions of this fragment within `code`.
    #[inline]
    pub fn ops<'a>(&self, code: &'a [Op]) -> &'a [Op] {
        &code[self.start as usize..self.end as usize]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[inline(always)]
pub(crate) fn rhs_i(rhs: RhsI, pool: &ConstPool) -> i64 {
    match rhs {
        RhsI::Imm(v) => v,
        RhsI::Pool(i) => {
            debug_assert!(
                (i as usize) < pool.ints.len(),
                "verified program cannot reference int pool slot {i} of {}",
                pool.ints.len()
            );
            pool.ints[i as usize]
        }
    }
}

#[inline(always)]
pub(crate) fn rhs_f(rhs: RhsF, pool: &ConstPool) -> f64 {
    match rhs {
        RhsF::Imm(v) => v,
        RhsF::Pool(i) => {
            debug_assert!(
                (i as usize) < pool.floats.len(),
                "verified program cannot reference float pool slot {i} of {}",
                pool.floats.len()
            );
            pool.floats[i as usize]
        }
    }
}

/// Cross-check (debug builds only) that a column access the verifier
/// proved in-bounds really is: `width` bytes at `offset` inside `record`.
#[inline(always)]
fn debug_check_read(record: &[u8], offset: u32, width: u32) {
    debug_assert!(
        offset as usize + width as usize <= record.len(),
        "verified program cannot read [{offset}, {offset}+{width}) of a {}-byte record",
        record.len()
    );
}

/// Evaluate one predicate test against one record.  Shared by the scalar
/// filter loop and the vectorized tier's fused conjunction steps.
#[inline(always)]
pub(crate) fn test_op(op: &Op, pool: &ConstPool, record: &[u8]) -> bool {
    match *op {
        Op::TestI32 { offset, op, rhs } => {
            debug_check_read(record, offset, 4);
            op.matches((read_i32_at(record, offset as usize) as i64).cmp(&rhs_i(rhs, pool)))
        }
        Op::TestI64 { offset, op, rhs } => {
            debug_check_read(record, offset, 8);
            op.matches(read_i64_at(record, offset as usize).cmp(&rhs_i(rhs, pool)))
        }
        Op::TestF64 { offset, op, rhs } => {
            debug_check_read(record, offset, 8);
            op.matches(read_f64_at(record, offset as usize).total_cmp(&rhs_f(rhs, pool)))
        }
        Op::TestBytes {
            offset,
            width,
            op,
            pool: slot,
        } => {
            debug_check_read(record, offset, width);
            debug_assert!(
                (slot as usize) < pool.bytes.len(),
                "verified program cannot reference bytes pool slot {slot} of {}",
                pool.bytes.len()
            );
            let field = &record[offset as usize..(offset + width) as usize];
            op.matches(field.cmp(pool.bytes[slot as usize].as_slice()))
        }
        _ => unreachable!("non-test op in filter fragment"),
    }
}

/// Run a filter fragment over one record: every test must pass.
/// `comparisons` counts the tests executed (the generated code's
/// short-circuit `continue` skips the rest, exactly like the static
/// kernels' filter loop).
#[inline]
pub fn run_filter(ops: &[Op], pool: &ConstPool, record: &[u8], comparisons: &mut u64) -> bool {
    for op in ops {
        *comparisons += 1;
        if !test_op(op, pool, record) {
            return false;
        }
    }
    true
}

/// Run a projection fragment: copy the kept byte ranges of `record` into
/// `out` (sized to the projected width by the caller).
#[inline]
pub fn run_project(ops: &[Op], record: &[u8], out: &mut [u8]) {
    for op in ops {
        match *op {
            Op::Copy { src, width, dst } => {
                debug_check_read(record, src, width);
                debug_assert!(
                    dst as usize + width as usize <= out.len(),
                    "verified program cannot write [{dst}, {dst}+{width}) of a {}-byte output",
                    out.len()
                );
                out[dst as usize..(dst + width) as usize]
                    .copy_from_slice(&record[src as usize..(src + width) as usize]);
            }
            _ => unreachable!("non-copy op in projection fragment"),
        }
    }
}

/// Run an expression fragment; the result is the value of the last
/// instruction's destination register.
#[inline]
pub fn run_expr(ops: &[Op], pool: &ConstPool, record: &[u8], regs: &mut [f64]) -> f64 {
    let mut result = 0.0;
    for op in ops {
        #[cfg(debug_assertions)]
        if let Op::LoadF { dst, .. }
        | Op::LoadI32F { dst, .. }
        | Op::LoadI64F { dst, .. }
        | Op::ConstF { dst, .. }
        | Op::PoolF { dst, .. }
        | Op::Arith { dst, .. } = *op
        {
            debug_assert!(
                (dst as usize) < regs.len(),
                "verified program cannot address register r{dst} of a {}-register bank",
                regs.len()
            );
        }
        result = match *op {
            Op::LoadF { dst, offset } => {
                debug_check_read(record, offset, 8);
                regs[dst as usize] = read_f64_at(record, offset as usize);
                regs[dst as usize]
            }
            Op::LoadI32F { dst, offset } => {
                debug_check_read(record, offset, 4);
                regs[dst as usize] = read_i32_at(record, offset as usize) as f64;
                regs[dst as usize]
            }
            Op::LoadI64F { dst, offset } => {
                debug_check_read(record, offset, 8);
                regs[dst as usize] = read_i64_at(record, offset as usize) as f64;
                regs[dst as usize]
            }
            Op::ConstF { dst, value } => {
                regs[dst as usize] = value;
                regs[dst as usize]
            }
            Op::PoolF { dst, idx } => {
                debug_assert!(
                    (idx as usize) < pool.floats.len(),
                    "verified program cannot reference float pool slot {idx} of {}",
                    pool.floats.len()
                );
                regs[dst as usize] = pool.floats[idx as usize];
                regs[dst as usize]
            }
            Op::Arith { op, dst, a, b } => {
                debug_assert!(
                    (a as usize) < regs.len() && (b as usize) < regs.len(),
                    "verified program cannot read registers r{a}/r{b} of a {}-register bank",
                    regs.len()
                );
                let (l, r) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                };
                regs[dst as usize]
            }
            _ => unreachable!("non-expression op in expression fragment"),
        };
    }
    result
}

/// Run a (single-instruction) key-image fragment, returning the key's
/// `i64` image — bit-compatible with the static kernels'
/// `CompiledKey::as_i64`, so hash placement agrees across engine modes.
#[inline]
pub fn run_image(ops: &[Op], record: &[u8]) -> i64 {
    let mut image = 0i64;
    for op in ops {
        image = match *op {
            Op::ImageI32 { offset } => {
                debug_check_read(record, offset, 4);
                read_i32_at(record, offset as usize) as i64
            }
            Op::ImageI64 { offset } => {
                debug_check_read(record, offset, 8);
                read_i64_at(record, offset as usize)
            }
            Op::ImageF64 { offset } => {
                debug_check_read(record, offset, 8);
                let bits = read_f64_at(record, offset as usize).to_bits() as i64;
                bits ^ (((bits >> 63) as u64) >> 1) as i64
            }
            Op::ImageChar { offset, width } => {
                let take = (width as usize).min(8);
                debug_check_read(record, offset, take as u32);
                let bytes = &record[offset as usize..offset as usize + take];
                let mut buf = [0u8; 8];
                buf[..take].copy_from_slice(bytes);
                i64::from_be_bytes(buf)
            }
            _ => unreachable!("non-image op in image fragment"),
        };
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_types::tuple::encode_record;
    use hique_types::{Column, DataType, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("i", DataType::Int32),
            Column::new("f", DataType::Float64),
            Column::new("s", DataType::Char(6)),
            Column::new("l", DataType::Int64),
        ])
    }

    fn record(i: i32, f: f64, s: &str, l: i64) -> Vec<u8> {
        encode_record(
            &schema(),
            &[
                Value::Int32(i),
                Value::Float64(f),
                Value::Str(s.into()),
                Value::Int64(l),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_fragment_short_circuits_and_counts() {
        let s = schema();
        let rec = record(5, 2.5, "abc", 77);
        let mut pool = ConstPool::default();
        let slot = pool.push_bytes(b"abc   ".to_vec());
        let ops = [
            Op::TestI32 {
                offset: s.offset(0) as u32,
                op: CmpOp::Eq,
                rhs: RhsI::Imm(5),
            },
            Op::TestF64 {
                offset: s.offset(1) as u32,
                op: CmpOp::Lt,
                rhs: RhsF::Imm(3.0),
            },
            Op::TestBytes {
                offset: s.offset(2) as u32,
                width: 6,
                op: CmpOp::Eq,
                pool: slot,
            },
        ];
        let mut cmp = 0u64;
        assert!(run_filter(&ops, &pool, &rec, &mut cmp));
        assert_eq!(cmp, 3);
        // First test fails: the rest are skipped.
        let miss = record(6, 2.5, "abc", 77);
        cmp = 0;
        assert!(!run_filter(&ops, &pool, &miss, &mut cmp));
        assert_eq!(cmp, 1);
    }

    #[test]
    fn pooled_and_immediate_operands_agree() {
        let s = schema();
        let rec = record(5, 2.5, "abc", 77);
        let mut pool = ConstPool::default();
        let islot = pool.push_int(5);
        let mut cmp = 0u64;
        let pooled = [Op::TestI32 {
            offset: s.offset(0) as u32,
            op: CmpOp::Eq,
            rhs: RhsI::Pool(islot),
        }];
        let imm = [Op::TestI32 {
            offset: s.offset(0) as u32,
            op: CmpOp::Eq,
            rhs: RhsI::Imm(5),
        }];
        assert_eq!(
            run_filter(&pooled, &pool, &rec, &mut cmp),
            run_filter(&imm, &pool, &rec, &mut cmp)
        );
    }

    #[test]
    fn expression_fragment_evaluates_registers() {
        let s = schema();
        let rec = record(4, 0.25, "zz", 8);
        let pool = ConstPool::default();
        // f * (1 - i) + l  ==  0.25 * (1 - 4) + 8  ==  7.25
        let ops = [
            Op::LoadF {
                dst: 0,
                offset: s.offset(1) as u32,
            },
            Op::ConstF { dst: 1, value: 1.0 },
            Op::LoadI32F {
                dst: 2,
                offset: s.offset(0) as u32,
            },
            Op::Arith {
                op: BinOp::Sub,
                dst: 1,
                a: 1,
                b: 2,
            },
            Op::Arith {
                op: BinOp::Mul,
                dst: 0,
                a: 0,
                b: 1,
            },
            Op::LoadI64F {
                dst: 1,
                offset: s.offset(3) as u32,
            },
            Op::Arith {
                op: BinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
        ];
        let mut regs = [0.0; 4];
        assert!((run_expr(&ops, &pool, &rec, &mut regs) - 7.25).abs() < 1e-12);
    }

    #[test]
    fn key_images_match_static_kernels() {
        use hique_holistic::kernel::CompiledKey;
        let s = schema();
        let recs = [
            record(-3, -0.0, "ab", i64::MIN + 1),
            record(7, 3.75, "zzzzzz", 42),
        ];
        for (col, op) in [
            (
                0usize,
                Op::ImageI32 {
                    offset: s.offset(0) as u32,
                },
            ),
            (
                1,
                Op::ImageF64 {
                    offset: s.offset(1) as u32,
                },
            ),
            (
                2,
                Op::ImageChar {
                    offset: s.offset(2) as u32,
                    width: 6,
                },
            ),
            (
                3,
                Op::ImageI64 {
                    offset: s.offset(3) as u32,
                },
            ),
        ] {
            let key = CompiledKey::compile(&s, col);
            for rec in &recs {
                assert_eq!(run_image(&[op], rec), key.as_i64(rec), "column {col}");
            }
        }
    }

    #[test]
    fn projection_fragment_copies_ranges() {
        let s = schema();
        let rec = record(9, 1.5, "xy", 33);
        let ops = [
            Op::Copy {
                src: s.offset(3) as u32,
                width: 8,
                dst: 0,
            },
            Op::Copy {
                src: s.offset(0) as u32,
                width: 4,
                dst: 8,
            },
        ];
        let mut out = vec![0u8; 12];
        run_project(&ops, &rec, &mut out);
        assert_eq!(read_i64_at(&out, 0), 33);
        assert_eq!(read_i32_at(&out, 8), 9);
    }
}
