//! Query-time kernel compilation: the bytecode VM engine mode.
//!
//! The paper's holistic model generates C source per query and compiles it
//! with `gcc` at prepare time; this workspace's `hique-holistic` crate
//! *renders* that source but executes statically pre-instantiated Rust
//! kernels (DESIGN.md §2).  This crate closes the gap with compilation
//! that really happens at query time: [`compile`] lowers the rendered
//! kernel program into compact register-machine bytecode
//! ([`bytecode::Op`]), and [`exec::execute`] runs it as the fifth engine
//! mode (`vm`) under the same execution contract as the others — threads,
//! memory budget, spill namespaces, cancellation, full [`ExecStats`]
//! parity (DESIGN.md §13).
//!
//! Constant specialization is the paper's headline trick and the axis this
//! crate makes explicit: a [`CompileMode::Specialized`] program folds the
//! query's predicate constants into the instructions as immediates, while
//! a [`CompileMode::Pooled`] program keeps them in a [`ConstPool`] so the
//! compiled code is a template for its entire `shape_class` — the server's
//! plan cache stores both, serving repeat queries the specialized program
//! and literal-varying classmates a cheap [`VmProgram::bind`] (signature
//! checked, pool swapped, constants folded) instead of a full prepare.
//!
//! Execution has two tiers ([`exec::Tier`]): the original row-at-a-time
//! scalar interpreter, and a vectorized tier (`vector` module,
//! DESIGN.md §15)
//! that dispatches each op once per batch of tuples over selection
//! vectors and columnar register lanes, with a peephole fusion pass
//! rewriting hot op pairs into superinstructions.  Tier selection is
//! automatic per fragment at prepare time; results and [`ExecStats`]
//! are bit-identical across tiers, with `vm_batches`/`vm_fused_ops`
//! recording which tier ran.
//!
//! Every compiled or rebound program passes a static verifier
//! ([`verify::verify`]) before it can reach the interpreter: abstract
//! interpretation proving register def-before-use, operand/field type
//! agreement, pool and fragment bounds, plan agreement and output arity
//! (DESIGN.md §14).  [`mutate`] generates seeded single-op corruptions of
//! verified programs for the conformance mutation lane — negative tests
//! that the verifier (or, failing that, a typed runtime error) catches
//! every one.
//!
//! [`ExecStats`]: hique_types::ExecStats

#![forbid(unsafe_code)]

pub mod bytecode;
pub mod exec;
pub mod mutate;
pub mod program;
pub(crate) mod vector;
pub mod verify;

pub use bytecode::{ConstPool, Frag, Op};
pub use exec::{execute, Tier};
pub use mutate::{mutants, Mutant};
pub use program::{collect_pool, compile, plan_signature, plan_structure, CompileMode, VmProgram};
pub use verify::{verify, VerifyError};
