//! Query-time kernel compilation: the bytecode VM engine mode.
//!
//! The paper's holistic model generates C source per query and compiles it
//! with `gcc` at prepare time; this workspace's `hique-holistic` crate
//! *renders* that source but executes statically pre-instantiated Rust
//! kernels (DESIGN.md §2).  This crate closes the gap with compilation
//! that really happens at query time: [`compile`] lowers the rendered
//! kernel program into compact register-machine bytecode
//! ([`bytecode::Op`]), and [`exec::execute`] runs it as the fifth engine
//! mode (`vm`) under the same execution contract as the others — threads,
//! memory budget, spill namespaces, cancellation, full [`ExecStats`]
//! parity (DESIGN.md §13).
//!
//! Constant specialization is the paper's headline trick and the axis this
//! crate makes explicit: a [`CompileMode::Specialized`] program folds the
//! query's predicate constants into the instructions as immediates, while
//! a [`CompileMode::Pooled`] program keeps them in a [`ConstPool`] so the
//! compiled code is a template for its entire `shape_class` — the server's
//! plan cache stores both, serving repeat queries the specialized program
//! and literal-varying classmates a cheap [`VmProgram::bind`] (signature
//! checked, pool swapped, constants folded) instead of a full prepare.
//!
//! [`ExecStats`]: hique_types::ExecStats

pub mod bytecode;
pub mod exec;
pub mod program;

pub use bytecode::{ConstPool, Frag, Op};
pub use exec::execute;
pub use program::{collect_pool, compile, plan_signature, CompileMode, VmProgram};
