//! Planner configuration: hardware parameters and algorithm overrides.
//!
//! The paper's generated code is customized to the host's cache hierarchy
//! (Table I: 32 KiB D1, 2 MiB L2).  The planner carries those parameters and
//! uses them to size staging partitions and to decide between map
//! aggregation and staged aggregation.  Benchmarks can force particular
//! algorithms to reproduce individual curves of Figures 5–7.

use crate::physical::{AggAlgorithm, JoinAlgorithm};

/// Tunables for plan generation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Size of the first-level data cache in bytes (paper's testbed: 32 KiB).
    pub d1_cache_bytes: usize,
    /// Size of the second-level cache in bytes (paper's testbed: 2 MiB).
    pub l2_cache_bytes: usize,
    /// Force every join to use this algorithm (benchmarks only).
    pub force_join_algorithm: Option<JoinAlgorithm>,
    /// Force aggregation to use this algorithm (benchmarks only).
    pub force_agg_algorithm: Option<AggAlgorithm>,
    /// Allow multi-way joins over a common key to be fused into a join team
    /// (paper §V-B, Figure 7(b)).
    pub enable_join_teams: bool,
    /// Maximum number of distinct values for which fine-grained partitioning
    /// (a value→partition map) is preferred over coarse hashing.
    pub fine_partition_limit: usize,
    /// Worker threads for partition-parallel execution (1 = serial).  The
    /// generated program divides staging scans, join partition pairs and
    /// aggregation across this many workers with deterministic chunking and
    /// merge order, so `threads = N` returns the same result as `threads = 1`
    /// for every query (see DESIGN.md §7).
    pub threads: usize,
    /// Memory budget in buffer-pool pages (0 = unbounded).  On a catalog
    /// running in paged mode this is the budget the pool was sized with;
    /// carrying it through the plan lets the executor spill staged
    /// intermediates ("temporary tables inside the buffer pool", paper §IV)
    /// once they outgrow a fraction of the budget.  Purely an execution
    /// knob: results are identical for every value (see DESIGN.md §9).
    pub memory_budget_pages: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            d1_cache_bytes: 32 * 1024,
            l2_cache_bytes: 2 * 1024 * 1024,
            force_join_algorithm: None,
            force_agg_algorithm: None,
            enable_join_teams: true,
            fine_partition_limit: 1024,
            threads: 1,
            memory_budget_pages: 0,
        }
    }
}

impl PlannerConfig {
    /// Configuration matching the paper's Intel Core 2 Duo 6300 testbed.
    pub fn paper_testbed() -> Self {
        Self::default()
    }

    /// Builder-style override of the forced join algorithm.
    pub fn with_join_algorithm(mut self, algorithm: JoinAlgorithm) -> Self {
        self.force_join_algorithm = Some(algorithm);
        self
    }

    /// Builder-style override of the forced aggregation algorithm.
    pub fn with_agg_algorithm(mut self, algorithm: AggAlgorithm) -> Self {
        self.force_agg_algorithm = Some(algorithm);
        self
    }

    /// Builder-style toggle for join teams.
    pub fn with_join_teams(mut self, enabled: bool) -> Self {
        self.enable_join_teams = enabled;
        self
    }

    /// Builder-style override of the worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style override of the page budget (0 = unbounded).
    pub fn with_memory_budget_pages(mut self, pages: usize) -> Self {
        self.memory_budget_pages = pages;
        self
    }

    /// Number of groups up to which the map-aggregation value directories
    /// and aggregate arrays comfortably fit in the L2 cache.
    ///
    /// Each group needs roughly one directory entry plus one accumulator per
    /// aggregate; we charge 64 bytes per group per aggregate as a
    /// conservative estimate (paper §VI-B observes the crossover when the
    /// auxiliary structures span the L2 cache).
    pub fn map_agg_group_limit(&self, num_aggregates: usize) -> usize {
        self.l2_cache_bytes / (64 * num_aggregates.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = PlannerConfig::default();
        assert_eq!(c.d1_cache_bytes, 32 * 1024);
        assert_eq!(c.l2_cache_bytes, 2 * 1024 * 1024);
        assert!(c.enable_join_teams);
        assert!(c.force_join_algorithm.is_none());
        assert_eq!(c.threads, 1);
        assert_eq!(c.memory_budget_pages, 0);
        assert_eq!(c, PlannerConfig::paper_testbed());
    }

    #[test]
    fn builders_set_fields() {
        let c = PlannerConfig::default()
            .with_join_algorithm(JoinAlgorithm::Merge)
            .with_agg_algorithm(AggAlgorithm::Map)
            .with_join_teams(false)
            .with_threads(4)
            .with_memory_budget_pages(256);
        assert_eq!(c.force_join_algorithm, Some(JoinAlgorithm::Merge));
        assert_eq!(c.force_agg_algorithm, Some(AggAlgorithm::Map));
        assert!(!c.enable_join_teams);
        assert_eq!(c.threads, 4);
        assert_eq!(c.memory_budget_pages, 256);
        assert_eq!(PlannerConfig::default().with_threads(0).threads, 1);
    }

    #[test]
    fn map_agg_limit_scales_with_cache_and_aggs() {
        let c = PlannerConfig::default();
        assert_eq!(c.map_agg_group_limit(1), 32 * 1024);
        assert_eq!(c.map_agg_group_limit(2), 16 * 1024);
        assert_eq!(c.map_agg_group_limit(0), 32 * 1024);
    }
}
