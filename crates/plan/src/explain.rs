//! Plan explanation: a human-readable rendering of a [`PhysicalPlan`].
//!
//! Mirrors the shape of the paper's operator-descriptor list: staging
//! descriptors first, then joins (or the fused join team), then aggregation
//! and ordering.  Used by the examples and by `EXPERIMENTS.md` to document
//! which plan each benchmark executes.

use std::fmt::Write as _;

use hique_sql::analyze::OutputExpr;

use crate::physical::{PhysicalPlan, StagingStrategy};

/// Render a multi-line explanation of the plan.
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Physical plan");
    let _ = writeln!(out, "=============");
    for (i, &t) in plan.join_order.iter().enumerate() {
        let st = &plan.staged[t];
        let strategy = match &st.strategy {
            StagingStrategy::None => "scan".to_string(),
            StagingStrategy::Sort { key_columns } => format!("scan + sort on {key_columns:?}"),
            StagingStrategy::PartitionFine {
                key_column,
                partitions,
            } => {
                format!("scan + fine partition on #{key_column} into {partitions}")
            }
            StagingStrategy::PartitionCoarse {
                key_column,
                partitions,
            } => {
                format!("scan + coarse partition on #{key_column} into {partitions}")
            }
            StagingStrategy::PartitionThenSort {
                key_column,
                partitions,
            } => {
                format!("scan + partition on #{key_column} into {partitions} + sort partitions")
            }
        };
        let _ = writeln!(
            out,
            "stage[{i}] {} ({} filters, keep {} cols, ~{} rows): {strategy}",
            st.table_name,
            st.filters.len(),
            st.keep.len(),
            st.estimated_rows
        );
    }
    if let Some(team) = &plan.join_team {
        let _ = writeln!(
            out,
            "join team over {} inputs using {} (keys {:?})",
            team.members.len(),
            team.algorithm.name(),
            team.key_columns
        );
    }
    for (i, j) in plan.joins.iter().enumerate() {
        let _ = writeln!(
            out,
            "join[{i}] + {} using {} (left key #{}, right key #{}, ~{} rows)",
            plan.staged[j.right].table_name,
            j.algorithm.name(),
            j.left_key,
            j.right_key,
            j.estimated_rows
        );
    }
    if let Some(agg) = &plan.aggregate {
        let _ = writeln!(
            out,
            "aggregate: {} over {} group column(s), {} aggregate(s)",
            agg.algorithm.name(),
            agg.group_columns.len(),
            agg.aggregates.len()
        );
    }
    if !plan.order_by.is_empty() {
        let keys: Vec<String> = plan
            .order_by
            .iter()
            .map(|(i, asc)| {
                format!(
                    "{} {}",
                    plan.output_schema.column(*i).name,
                    if *asc { "asc" } else { "desc" }
                )
            })
            .collect();
        let _ = writeln!(out, "order by: {}", keys.join(", "));
    }
    if let Some(l) = plan.limit {
        let _ = writeln!(out, "limit: {l}");
    }
    let outputs: Vec<String> = plan
        .output
        .iter()
        .zip(plan.output_schema.columns())
        .map(|(o, c)| match o {
            OutputExpr::GroupColumn(i) => format!("{} := group #{i}", c.name),
            OutputExpr::Scalar(_) => format!("{} := scalar expr", c.name),
            OutputExpr::Aggregate(i) => format!("{} := aggregate #{i}", c.name),
        })
        .collect();
    let _ = writeln!(out, "output: {}", outputs.join(", "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerConfig;
    use crate::optimizer::plan_query;
    use crate::provider::CatalogProvider;
    use hique_sql::{analyze, parse_query};
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    #[test]
    fn explain_mentions_every_stage() {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..100 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Float64(i as f64)]))
                .unwrap();
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i % 10), Value::Float64(1.0)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat.analyze_table("s").unwrap();
        let q = parse_query(
            "select r.k, sum(s.w) as total from r, s where r.k = s.k and r.v > 5 \
             group by r.k order by total desc limit 3",
        )
        .unwrap();
        let bound = analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        let text = explain(&plan);
        assert!(text.contains("stage[0]"));
        assert!(text.contains("stage[1]"));
        assert!(text.contains("join[0]"));
        assert!(text.contains("aggregate:"));
        assert!(text.contains("order by: total desc"));
        assert!(text.contains("limit: 3"));
        assert!(text.contains("output:"));
    }
}
