//! Plan explanation: a human-readable rendering of a [`PhysicalPlan`].
//!
//! Mirrors the shape of the paper's operator-descriptor list: staging
//! descriptors first, then joins (or the fused join team), then aggregation
//! and ordering.  Used by the examples and by `EXPERIMENTS.md` to document
//! which plan each benchmark executes.

use std::fmt::Write as _;

use hique_sql::analyze::OutputExpr;
use hique_types::ExecStats;

use crate::physical::{PhysicalPlan, StagingStrategy};
use crate::stats::q_error;

/// Measured per-operator cardinalities of one plan execution, used to render
/// estimated-vs-actual rows (and q-errors) in [`explain_with_actuals`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanActuals {
    /// Actual post-filter row count per staged table, indexed like
    /// [`PhysicalPlan::staged`].
    pub stage_rows: Vec<Option<usize>>,
    /// Actual output row count per join step, indexed like
    /// [`PhysicalPlan::joins`].
    pub join_rows: Vec<Option<usize>>,
}

impl PlanActuals {
    /// An empty actuals set shaped for `plan` (all counts unknown).
    pub fn unknown(plan: &PhysicalPlan) -> Self {
        PlanActuals {
            stage_rows: vec![None; plan.staged.len()],
            join_rows: vec![None; plan.joins.len()],
        }
    }
}

/// Format `~est rows`, extended with the measured count and q-error when the
/// actual cardinality is known.
fn rows_clause(estimated: usize, actual: Option<usize>) -> String {
    match actual {
        Some(actual) => format!(
            "~{estimated} rows, actual {actual}, q-error {:.2}",
            q_error(estimated, actual)
        ),
        None => format!("~{estimated} rows"),
    }
}

/// Render a multi-line explanation of the plan.
pub fn explain(plan: &PhysicalPlan) -> String {
    explain_with_actuals(plan, &PlanActuals::default())
}

/// The executor's size-only spill threshold for a plan's memory budget: a
/// quarter of the budget's page-data capacity (see the pipeline substrate's
/// `SpillContext`).  `None` when the plan carries no budget.
fn spill_threshold_bytes(plan: &PhysicalPlan) -> Option<usize> {
    if plan.memory_budget_pages == 0 {
        return None;
    }
    let page_data = hique_storage::PAGE_SIZE - hique_storage::PAGE_HEADER_SIZE;
    // Same formula as the pipeline substrate's SpillContext: a quarter of
    // the budget's data capacity, clamped to at least one byte.
    Some((plan.memory_budget_pages.saturating_mul(page_data) / 4).max(1))
}

/// ` [spill]` when a temporary of `estimated_bytes` would go to the pool
/// under the plan's budget, empty otherwise.  Mirrors the executor's
/// size-only decision applied to the *estimated* size, so EXPLAIN shows the
/// per-operator spill plan before anything runs.
fn spill_clause(threshold: Option<usize>, estimated_bytes: usize) -> &'static str {
    match threshold {
        Some(t) if estimated_bytes >= t => " [spill]",
        _ => "",
    }
}

/// Render the plan with measured per-operator cardinalities alongside the
/// optimizer's estimates.
pub fn explain_with_actuals(plan: &PhysicalPlan, actuals: &PlanActuals) -> String {
    let mut out = String::new();
    let threshold = spill_threshold_bytes(plan);
    let _ = writeln!(out, "Physical plan");
    let _ = writeln!(out, "=============");
    for (i, &t) in plan.join_order.iter().enumerate() {
        let st = &plan.staged[t];
        let strategy = match &st.strategy {
            StagingStrategy::None => "scan".to_string(),
            StagingStrategy::Sort { key_columns } => format!("scan + sort on {key_columns:?}"),
            StagingStrategy::PartitionFine {
                key_column,
                partitions,
            } => {
                format!("scan + fine partition on #{key_column} into {partitions}")
            }
            StagingStrategy::PartitionCoarse {
                key_column,
                partitions,
            } => {
                format!("scan + coarse partition on #{key_column} into {partitions}")
            }
            StagingStrategy::PartitionThenSort {
                key_column,
                partitions,
            } => {
                format!("scan + partition on #{key_column} into {partitions} + sort partitions")
            }
        };
        let _ = writeln!(
            out,
            "stage[{i}] {} ({} filters, keep {} cols, {}): {strategy}{}",
            st.table_name,
            st.filters.len(),
            st.keep.len(),
            rows_clause(
                st.estimated_rows,
                actuals.stage_rows.get(t).copied().flatten()
            ),
            spill_clause(
                threshold,
                st.estimated_rows.saturating_mul(st.schema.tuple_size())
            )
        );
    }
    if let Some(team) = &plan.join_team {
        let _ = writeln!(
            out,
            "join team over {} inputs using {} (keys {:?})",
            team.members.len(),
            team.algorithm.name(),
            team.key_columns
        );
    }
    // Width of the materialized intermediate after each join step, for the
    // spill marker: the joined record is the concatenation of every staged
    // record joined so far.
    let mut joined_width = plan
        .join_order
        .first()
        .map(|&t| plan.staged[t].schema.tuple_size())
        .unwrap_or(0);
    for (i, j) in plan.joins.iter().enumerate() {
        joined_width += plan.staged[j.right].schema.tuple_size();
        let _ = writeln!(
            out,
            "join[{i}] + {} using {} (left key #{}, right key #{}, {}){}",
            plan.staged[j.right].table_name,
            j.algorithm.name(),
            j.left_key,
            j.right_key,
            rows_clause(
                j.estimated_rows,
                actuals.join_rows.get(i).copied().flatten()
            ),
            spill_clause(threshold, j.estimated_rows.saturating_mul(joined_width))
        );
    }
    if let Some(agg) = &plan.aggregate {
        let _ = writeln!(
            out,
            "aggregate: {} over {} group column(s), {} aggregate(s)",
            agg.algorithm.name(),
            agg.group_columns.len(),
            agg.aggregates.len()
        );
    }
    if !plan.order_by.is_empty() {
        let keys: Vec<String> = plan
            .order_by
            .iter()
            .map(|(i, asc)| {
                format!(
                    "{} {}",
                    plan.output_schema.column(*i).name,
                    if *asc { "asc" } else { "desc" }
                )
            })
            .collect();
        let _ = writeln!(out, "order by: {}", keys.join(", "));
    }
    if let Some(l) = plan.limit {
        let _ = writeln!(out, "limit: {l}");
    }
    if plan.memory_budget_pages > 0 {
        let _ = writeln!(
            out,
            "memory budget: {} pages (temporaries >= {} bytes spill to the pool)",
            plan.memory_budget_pages,
            threshold.unwrap_or(0)
        );
    }
    let outputs: Vec<String> = plan
        .output
        .iter()
        .zip(plan.output_schema.columns())
        .map(|(o, c)| match o {
            OutputExpr::GroupColumn(i) => format!("{} := group #{i}", c.name),
            OutputExpr::Scalar(_) => format!("{} := scalar expr", c.name),
            OutputExpr::Aggregate(i) => format!("{} := aggregate #{i}", c.name),
        })
        .collect();
    let _ = writeln!(out, "output: {}", outputs.join(", "));
    out
}

/// Render the plan together with the execution counters of one run,
/// including the buffer-pool line (hits/misses/evictions and page I/O) that
/// documents how a paged execution behaved under its memory budget.
pub fn explain_with_stats(plan: &PhysicalPlan, actuals: &PlanActuals, stats: &ExecStats) -> String {
    let mut out = explain_with_actuals(plan, actuals);
    let io = &stats.io;
    let _ = writeln!(
        out,
        "buffer pool: hits={} misses={} evictions={} pages_read={} pages_written={} \
         peak_resident={} spilled_temporaries={} spill_claim_denied={}",
        io.pool_hits,
        io.pool_misses,
        io.pool_evictions,
        io.pages_read,
        io.pages_written,
        stats.peak_resident_pages,
        stats.spilled_temporaries,
        stats.spill_claim_denied
    );
    let _ = writeln!(out, "execution: {stats}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerConfig;
    use crate::optimizer::plan_query;
    use crate::provider::CatalogProvider;
    use hique_sql::{analyze, parse_query};
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    #[test]
    fn explain_mentions_every_stage() {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..100 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Float64(i as f64)]))
                .unwrap();
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i % 10), Value::Float64(1.0)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat.analyze_table("s").unwrap();
        let q = parse_query(
            "select r.k, sum(s.w) as total from r, s where r.k = s.k and r.v > 5 \
             group by r.k order by total desc limit 3",
        )
        .unwrap();
        let bound = analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        let text = explain(&plan);
        assert!(text.contains("stage[0]"));
        assert!(text.contains("stage[1]"));
        assert!(text.contains("join[0]"));
        assert!(text.contains("aggregate:"));
        assert!(text.contains("order by: total desc"));
        assert!(text.contains("limit: 3"));
        assert!(text.contains("output:"));
        // Without actuals no measured counts are rendered.
        assert!(!text.contains("actual"));

        // With actuals, estimated vs. actual rows and q-errors show up.
        let mut actuals = PlanActuals::unknown(&plan);
        for slot in actuals.stage_rows.iter_mut() {
            *slot = Some(37);
        }
        actuals.join_rows[0] = Some(100);
        let text = explain_with_actuals(&plan, &actuals);
        assert!(text.contains("actual 37"), "{text}");
        assert!(text.contains("actual 100"), "{text}");
        assert!(text.contains("q-error"), "{text}");
    }

    #[test]
    fn explain_with_stats_renders_pool_counters_and_budget() {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..10 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Float64(i as f64)]))
                .unwrap();
        }
        let q = parse_query("select k from r where v > 1").unwrap();
        let bound = analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let config = PlannerConfig::default().with_memory_budget_pages(32);
        let plan = plan_query(&bound, &cat, &config).unwrap();
        assert_eq!(plan.memory_budget_pages, 32);

        let mut stats = hique_types::ExecStats::new();
        stats.io.pool_hits = 7;
        stats.io.pool_misses = 3;
        stats.io.pool_evictions = 2;
        stats.io.pages_read = 3;
        stats.io.pages_written = 2;
        stats.peak_resident_pages = 30;
        stats.spilled_temporaries = 4;
        stats.spill_claim_denied = 1;
        stats.cancelled = 1;
        stats.faults_injected = 2;
        let text = explain_with_stats(&plan, &PlanActuals::unknown(&plan), &stats);
        assert!(text.contains("memory budget: 32 pages"), "{text}");
        assert!(
            text.contains(
                "buffer pool: hits=7 misses=3 evictions=2 pages_read=3 pages_written=2 \
                 peak_resident=30 spilled_temporaries=4 spill_claim_denied=1"
            ),
            "{text}"
        );
        assert!(text.contains("execution:"), "{text}");
        // The robustness counters flow through the execution line, so a
        // server-side `.stats` (or a replayed chaos run) shows them.
        assert!(text.contains("cancelled=1"), "{text}");
        assert!(text.contains("faults_injected=2"), "{text}");
        // An unbudgeted plan renders no budget line.
        let unbounded = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        assert!(!explain(&unbounded).contains("memory budget"));
    }

    #[test]
    fn explain_marks_per_operator_spill_decisions_under_a_budget() {
        let mut cat = Catalog::new();
        cat.create_table(
            "big",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("pad", DataType::Char(60)),
            ]),
        )
        .unwrap();
        for i in 0..5000 {
            cat.table_mut("big")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Str("x".into())]))
                .unwrap();
        }
        cat.analyze_table("big").unwrap();
        let q = parse_query("select k, pad from big").unwrap();
        let bound = analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        // Tiny budget: the ~320 KB staged input dwarfs the threshold.
        let plan = plan_query(
            &bound,
            &cat,
            &PlannerConfig::default().with_memory_budget_pages(4),
        )
        .unwrap();
        let text = explain(&plan);
        assert!(text.contains("[spill]"), "{text}");
        assert!(text.contains("spill to the pool"), "{text}");
        // The same plan with no budget renders no spill markers.
        let unbounded = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        assert!(!explain(&unbounded).contains("[spill]"));
    }
}
