//! Greedy join ordering and join-team detection.
//!
//! The optimizer orders joins greedily to minimise intermediate result sizes
//! (paper §IV).  It also recognises **join teams** (paper §V-B, after
//! Graefe's hash teams): when every join predicate belongs to one attribute
//! equivalence class — e.g. a star of key–foreign-key joins on a common key
//! — the whole multi-way join can be fused into a single set of nested loops
//! with no intermediate materialization (Figure 7(b) measures the benefit).

use hique_sql::analyze::EquiJoin;

/// The chosen join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOrder {
    /// Table indexes (into the bound query's table list), evaluation order.
    pub order: Vec<usize>,
    /// For every table after the first, the equi-join predicate (index into
    /// the bound query's join list) connecting it to the tables before it;
    /// `None` means a cross product was unavoidable.
    pub edges: Vec<Option<usize>>,
    /// Estimated cardinality after each step (`order.len()` entries; entry 0
    /// is the first table's estimate).
    pub estimates: Vec<usize>,
}

/// Detect whether all joins share one attribute equivalence class.
///
/// Returns the per-table key column (table-local index) for every table that
/// participates in a join, or `None` when the joins span several keys or any
/// table joins on more than one column.
pub fn detect_join_team(num_tables: usize, joins: &[EquiJoin]) -> Option<Vec<(usize, usize)>> {
    if joins.len() < 2 {
        return None;
    }
    // Union-find over (table, column) pairs.
    let mut keys: Vec<Option<usize>> = vec![None; num_tables];
    for j in joins {
        for &(t, c) in &[
            (j.left_table, j.left_column),
            (j.right_table, j.right_column),
        ] {
            match keys[t] {
                None => keys[t] = Some(c),
                Some(existing) if existing == c => {}
                Some(_) => return None, // a table joins on two different columns
            }
        }
    }
    // Every join must connect two tables that are both in the same class by
    // construction above (each table has a single key column).  Verify every
    // joined table got a key and at least three tables participate —
    // otherwise a plain binary join is just as good.
    let members: Vec<(usize, usize)> = keys
        .iter()
        .enumerate()
        .filter_map(|(t, k)| k.map(|c| (t, c)))
        .collect();
    if members.len() < 3 {
        return None;
    }
    Some(members)
}

/// Greedily order the tables to minimise intermediate sizes.
///
/// `table_rows[i]` is the estimated post-filter cardinality of table `i`;
/// `join_rows(a_est, a, b)` estimates the output of joining the current
/// intermediate (estimated `a_est` rows, containing table set `a`) with
/// table `b` over whichever join predicates connect them.
pub fn greedy_order(
    table_rows: &[usize],
    joins: &[EquiJoin],
    estimate_pair: &dyn Fn(usize, usize, usize) -> usize,
) -> JoinOrder {
    let n = table_rows.len();
    if n == 1 {
        return JoinOrder {
            order: vec![0],
            edges: vec![],
            estimates: vec![table_rows[0]],
        };
    }

    let connecting = |placed: &[usize], candidate: usize| -> Option<usize> {
        joins.iter().position(|j| {
            (placed.contains(&j.left_table) && j.right_table == candidate)
                || (placed.contains(&j.right_table) && j.left_table == candidate)
        })
    };

    // Start from the pair with the smallest estimated join output; fall back
    // to the two smallest tables when the query has no join predicate at all.
    let mut best: Option<(usize, usize, usize, Option<usize>)> = None;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let edge = joins.iter().position(|j| {
                (j.left_table == a && j.right_table == b)
                    || (j.left_table == b && j.right_table == a)
            });
            let est = match edge {
                Some(e) => estimate_pair(table_rows[a], b, e),
                None => table_rows[a].saturating_mul(table_rows[b]),
            };
            // Prefer joined pairs over cross products, then smaller outputs,
            // then smaller left inputs for determinism.
            let key = (edge.is_none(), est, table_rows[a], a, b);
            let better = match &best {
                None => true,
                Some((ba, bb, best_est, bedge)) => {
                    let bkey = (bedge.is_none(), *best_est, table_rows[*ba], *ba, *bb);
                    key < bkey
                }
            };
            if better {
                best = Some((a, b, est, edge));
            }
        }
    }
    let (first, second, first_est, first_edge) = best.expect("n >= 2");

    let mut order = vec![first, second];
    let mut edges = vec![first_edge];
    let mut estimates = vec![table_rows[first], first_est];
    let mut current_est = first_est;

    while order.len() < n {
        let mut step: Option<(usize, usize, Option<usize>)> = None; // (table, est, edge)
        for (cand, &cand_rows) in table_rows.iter().enumerate().take(n) {
            if order.contains(&cand) {
                continue;
            }
            let edge = connecting(&order, cand);
            let est = match edge {
                Some(e) => estimate_pair(current_est, cand, e),
                None => current_est.saturating_mul(cand_rows),
            };
            let key = (edge.is_none(), est, cand);
            let better = match &step {
                None => true,
                Some((st, sest, sedge)) => key < (sedge.is_none(), *sest, *st),
            };
            if better {
                step = Some((cand, est, edge));
            }
        }
        let (table, est, edge) = step.expect("candidate exists");
        order.push(table);
        edges.push(edge);
        estimates.push(est);
        current_est = est;
    }

    JoinOrder {
        order,
        edges,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ej(lt: usize, lc: usize, rt: usize, rc: usize) -> EquiJoin {
        EquiJoin {
            left_table: lt,
            left_column: lc,
            right_table: rt,
            right_column: rc,
        }
    }

    #[test]
    fn team_detected_for_common_key_star() {
        // t0.k = t1.k, t0.k = t2.k, t0.k = t3.k
        let joins = vec![ej(0, 0, 1, 0), ej(0, 0, 2, 2), ej(0, 0, 3, 1)];
        let team = detect_join_team(4, &joins).unwrap();
        assert_eq!(team.len(), 4);
        assert_eq!(team[0], (0, 0));
        assert_eq!(team[2], (2, 2));
    }

    #[test]
    fn team_rejected_when_keys_differ() {
        // t0 joins t1 on one column and t2 on another -> no team.
        let joins = vec![ej(0, 0, 1, 0), ej(0, 1, 2, 0)];
        assert!(detect_join_team(3, &joins).is_none());
        // A single binary join is not worth a team.
        assert!(detect_join_team(2, &[ej(0, 0, 1, 0)]).is_none());
        // Chain on a shared key is a team (customer-orders-lineitem style is
        // NOT: orders joins customer on custkey and lineitem on orderkey).
        let chain_two_keys = vec![ej(0, 0, 1, 1), ej(1, 2, 2, 0)];
        assert!(detect_join_team(3, &chain_two_keys).is_none());
    }

    #[test]
    fn greedy_prefers_small_intermediates() {
        // Three tables: t0 huge, t1 and t2 small; joins t0-t1 and t0-t2.
        let rows = vec![1_000_000, 1_000, 500];
        let joins = vec![ej(0, 0, 1, 0), ej(0, 1, 2, 0)];
        // Simple estimator: output = max of the two inputs.
        let order = greedy_order(&rows, &joins, &|cur, cand, _| cur.max(rows[cand]));
        // It should start with the small pair reachable through a join edge.
        assert_eq!(order.order.len(), 3);
        assert_eq!(order.edges.len(), 2);
        assert!(order.edges.iter().all(|e| e.is_some()));
        // All three estimates populated.
        assert_eq!(order.estimates.len(), 3);
    }

    #[test]
    fn single_table_is_trivial() {
        let order = greedy_order(&[42], &[], &|_, _, _| 0);
        assert_eq!(order.order, vec![0]);
        assert!(order.edges.is_empty());
        assert_eq!(order.estimates, vec![42]);
    }

    #[test]
    fn cross_product_used_as_last_resort() {
        let rows = vec![10, 20];
        let order = greedy_order(&rows, &[], &|_, _, _| 0);
        assert_eq!(order.order.len(), 2);
        assert_eq!(order.edges, vec![None]);
        assert_eq!(order.estimates[1], 200);
    }
}
