//! Physical plan structures: the optimizer's output.
//!
//! A [`PhysicalPlan`] corresponds to the paper's "topologically sorted list
//! of operator descriptors": data staging for every input, join steps in a
//! chosen order (or a fused join team), at most one aggregation and one
//! ordering operator, and the parameters each code template needs for
//! instantiation (key offsets, predicate constants, partition counts).

use hique_sql::analyze::{BoundAggregate, BoundQuery, ColumnFilter, OutputExpr};
use hique_types::Schema;

/// How a staged input is physically organised before its consumer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StagingStrategy {
    /// Scan/filter/project only; no ordering or partitioning.
    None,
    /// Sort the staged table on the given staged-schema columns.
    Sort {
        /// Staged-schema column indexes to sort by, major first.
        key_columns: Vec<usize>,
    },
    /// Fine-grained partitioning: a value→partition directory on the key.
    PartitionFine {
        /// Staged-schema column index of the partitioning key.
        key_column: usize,
        /// Number of partitions (= number of distinct key values).
        partitions: usize,
    },
    /// Coarse-grained partitioning: hash & modulo on the key.
    PartitionCoarse {
        /// Staged-schema column index of the partitioning key.
        key_column: usize,
        /// Number of partitions.
        partitions: usize,
    },
    /// Coarse partitioning followed by sorting each partition on the key —
    /// the staging of the paper's *hybrid hash-sort* algorithms.
    PartitionThenSort {
        /// Staged-schema column index of the partitioning key.
        key_column: usize,
        /// Number of partitions.
        partitions: usize,
    },
}

/// Join evaluation algorithms (paper §V-B).
///
/// All of them instantiate the same nested-loops code template; they differ
/// in how their inputs are staged and which bound-update steps are enabled
/// inside the loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Inputs sorted on the join key; linear merge with backtracking over
    /// groups of equal inner keys.
    Merge,
    /// Inputs partitioned (Grace-style); corresponding partitions joined
    /// with nested loops.  With fine-grained partitioning every pair in
    /// corresponding partitions matches.
    Partition,
    /// Inputs coarsely partitioned, each partition pair sorted just before
    /// joining, then merge-joined: the paper's *hybrid hash-sort-merge*.
    HybridHashSortMerge,
    /// Plain blocked nested loops (fallback when no equi-join key exists).
    NestedLoops,
}

impl JoinAlgorithm {
    /// Human-readable name used in plan explanations and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            JoinAlgorithm::Merge => "merge join",
            JoinAlgorithm::Partition => "partition join",
            JoinAlgorithm::HybridHashSortMerge => "hybrid hash-sort-merge join",
            JoinAlgorithm::NestedLoops => "nested-loops join",
        }
    }
}

/// Aggregation algorithms (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggAlgorithm {
    /// Input staged (sorted on the grouping attributes); groups found in a
    /// single linear scan.
    Sort,
    /// Input hash-partitioned on the first grouping attribute, each
    /// partition sorted on all grouping attributes, then scanned.
    HybridHashSort,
    /// Value directories per grouping attribute map each tuple to a slot of
    /// the aggregate arrays; single pass, no staging.
    Map,
}

impl AggAlgorithm {
    /// Human-readable name used in plan explanations and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            AggAlgorithm::Sort => "sort aggregation",
            AggAlgorithm::HybridHashSort => "hybrid hash-sort aggregation",
            AggAlgorithm::Map => "map aggregation",
        }
    }
}

/// The staging descriptor of one base table.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedTable {
    /// Index of the table in [`BoundQuery::tables`].
    pub table: usize,
    /// Catalog name of the table.
    pub table_name: String,
    /// Filters to apply while scanning (columns are base-table indexes).
    pub filters: Vec<ColumnFilter>,
    /// Base-table column indexes to keep, in staged order (projection during
    /// staging; the paper drops unneeded fields to shrink tuples).
    pub keep: Vec<usize>,
    /// Schema of the staged output (qualified column names).
    pub schema: Schema,
    /// Physical organisation of the staged output.
    pub strategy: StagingStrategy,
    /// Estimated number of rows surviving the filters.
    pub estimated_rows: usize,
}

/// One binary join step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// Index into [`PhysicalPlan::staged`] of the input joined in this step.
    pub right: usize,
    /// Join-key column index in the *current joined schema* (left side).
    pub left_key: usize,
    /// Join-key column index in the staged right table's schema.
    pub right_key: usize,
    /// Chosen algorithm.
    pub algorithm: JoinAlgorithm,
    /// Estimated output cardinality of this step.
    pub estimated_rows: usize,
}

/// A fused multi-way join over a common key (paper §V-B "join teams").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTeam {
    /// Indexes into [`PhysicalPlan::staged`], in team evaluation order.
    pub members: Vec<usize>,
    /// For each member, the join-key column index in its staged schema.
    pub key_columns: Vec<usize>,
    /// Algorithm used to stage and walk the members (Merge or
    /// HybridHashSortMerge).
    pub algorithm: JoinAlgorithm,
}

/// Aggregation specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// Grouping columns as joined-schema indexes.
    pub group_columns: Vec<usize>,
    /// Aggregates with arguments rebound over the joined schema.
    pub aggregates: Vec<BoundAggregate>,
    /// Chosen algorithm.
    pub algorithm: AggAlgorithm,
    /// For map aggregation: the per-grouping-column distinct counts the
    /// planner believes (sizes of the value directories).
    pub group_domain_sizes: Vec<usize>,
}

/// The optimizer's output for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The analyzed query this plan was derived from.
    pub query: BoundQuery,
    /// Staging descriptor per base table, in `FROM` order.
    pub staged: Vec<StagedTable>,
    /// Join order: indexes into `staged`; the first element is the initial
    /// (build) input, subsequent elements are added by `joins[i-1]`.
    pub join_order: Vec<usize>,
    /// Binary join steps (`join_order.len() - 1` entries, empty for
    /// single-table queries or when a join team covers all joins).
    pub joins: Vec<JoinStep>,
    /// Fused join team, when every join shares a common key and teams are
    /// enabled.
    pub join_team: Option<JoinTeam>,
    /// Record layout after all joins: concatenation of staged schemas in
    /// `join_order`.
    pub joined_schema: Schema,
    /// Aggregation, if the query has one.
    pub aggregate: Option<AggregateSpec>,
    /// Output expressions rebound over the joined schema (for non-aggregate
    /// queries) or referencing group columns/aggregates (for aggregate
    /// queries).
    pub output: Vec<OutputExpr>,
    /// Result schema.
    pub output_schema: Schema,
    /// Final ordering over output columns.
    pub order_by: Vec<(usize, bool)>,
    /// Row limit.
    pub limit: Option<u64>,
    /// Worker threads the generated program should execute with (from
    /// [`crate::PlannerConfig::threads`]; 1 = serial).
    pub threads: usize,
    /// Memory budget in buffer-pool pages (from
    /// [`crate::PlannerConfig::memory_budget_pages`]; 0 = unbounded).  The
    /// executor spills staged intermediates through the catalog's buffer
    /// pool once they outgrow a fraction of this budget.
    pub memory_budget_pages: usize,
}

impl PhysicalPlan {
    /// True when the plan contains at least one join.
    pub fn has_joins(&self) -> bool {
        self.staged.len() > 1
    }

    /// True when the plan aggregates.
    pub fn has_aggregate(&self) -> bool {
        self.aggregate.is_some()
    }

    /// The staged table that starts the join pipeline.
    pub fn first_input(&self) -> &StagedTable {
        &self.staged[self.join_order[0]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names() {
        assert_eq!(JoinAlgorithm::Merge.name(), "merge join");
        assert_eq!(
            JoinAlgorithm::HybridHashSortMerge.name(),
            "hybrid hash-sort-merge join"
        );
        assert_eq!(JoinAlgorithm::Partition.name(), "partition join");
        assert_eq!(JoinAlgorithm::NestedLoops.name(), "nested-loops join");
        assert_eq!(AggAlgorithm::Map.name(), "map aggregation");
        assert_eq!(AggAlgorithm::Sort.name(), "sort aggregation");
        assert_eq!(
            AggAlgorithm::HybridHashSort.name(),
            "hybrid hash-sort aggregation"
        );
    }

    #[test]
    fn staging_strategy_equality() {
        assert_eq!(StagingStrategy::None, StagingStrategy::None);
        assert_ne!(
            StagingStrategy::Sort {
                key_columns: vec![0]
            },
            StagingStrategy::Sort {
                key_columns: vec![1]
            }
        );
        assert_ne!(
            StagingStrategy::PartitionFine {
                key_column: 0,
                partitions: 4
            },
            StagingStrategy::PartitionCoarse {
                key_column: 0,
                partitions: 4
            }
        );
    }
}
