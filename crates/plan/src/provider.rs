//! Bridging the catalog to the SQL analyzer.

use hique_sql::analyze::SchemaProvider;
use hique_storage::Catalog;
use hique_types::Schema;

/// Adapter exposing a [`Catalog`] as the analyzer's [`SchemaProvider`].
pub struct CatalogProvider<'a> {
    catalog: &'a Catalog,
}

impl<'a> CatalogProvider<'a> {
    /// Wrap a catalog reference.
    pub fn new(catalog: &'a Catalog) -> Self {
        CatalogProvider { catalog }
    }
}

impl SchemaProvider for CatalogProvider<'_> {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        self.catalog.table(table).ok().map(|t| t.schema.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_types::{Column, DataType};

    #[test]
    fn provider_resolves_registered_tables() {
        let mut catalog = Catalog::new();
        catalog
            .create_table("t", Schema::new(vec![Column::new("a", DataType::Int32)]))
            .unwrap();
        let provider = CatalogProvider::new(&catalog);
        assert!(provider.table_schema("t").is_some());
        assert!(provider.table_schema("T").is_some());
        assert!(provider.table_schema("missing").is_none());
    }
}
