//! Cardinality estimation.
//!
//! The paper's optimizer "chooses the optimal evaluation plan using a greedy
//! approach, with the objective of minimizing the size of intermediate
//! results".  The estimates here use classic System-R style heuristics over
//! the catalog statistics gathered by `Catalog::analyze_table`: row counts,
//! per-column distinct counts and min/max bounds.

use hique_sql::analyze::ColumnFilter;
use hique_sql::ast::CmpOp;
use hique_storage::catalog::TableInfo;
use hique_types::Value;

/// Statistics snapshot of one base table, as the planner sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Total rows in the table.
    pub rows: usize,
    /// Distinct values per column (0 when unknown / not analyzed).
    pub distinct: Vec<usize>,
    /// Per-column minimum (None when unknown).
    pub min: Vec<Option<Value>>,
    /// Per-column maximum (None when unknown).
    pub max: Vec<Option<Value>>,
}

impl TableStats {
    /// Extract a snapshot from catalog metadata.
    pub fn from_table(info: &TableInfo) -> Self {
        let n = info.schema.len();
        let mut distinct = vec![0usize; n];
        let mut min = vec![None; n];
        let mut max = vec![None; n];
        for (i, cs) in info.column_stats.iter().enumerate().take(n) {
            distinct[i] = cs.distinct;
            min[i] = cs.min.clone();
            max[i] = cs.max.clone();
        }
        TableStats {
            rows: info.row_count(),
            distinct,
            min,
            max,
        }
    }

    /// Statistics for a table the planner knows nothing about beyond its row
    /// count (used in unit tests and for freshly generated data).
    pub fn unknown(rows: usize, columns: usize) -> Self {
        TableStats {
            rows,
            distinct: vec![0; columns],
            min: vec![None; columns],
            max: vec![None; columns],
        }
    }

    /// Distinct count of a column, falling back to a default guess.
    pub fn distinct_or(&self, column: usize, default: usize) -> usize {
        match self.distinct.get(column) {
            Some(&d) if d > 0 => d,
            _ => default,
        }
    }
}

/// Estimated selectivity of a single filter.
///
/// Equality filters use `1/distinct`; range filters interpolate within the
/// known [min, max] interval when both bounds and the constant are numeric,
/// otherwise fall back to the textbook 1/3; inequality keeps almost
/// everything.
pub fn filter_selectivity(filter: &ColumnFilter, stats: &TableStats) -> f64 {
    let distinct = stats.distinct_or(filter.column, 10);
    match filter.op {
        CmpOp::Eq => 1.0 / distinct as f64,
        CmpOp::NotEq => 1.0 - 1.0 / distinct as f64,
        CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq => {
            let (min, max) = (
                stats.min.get(filter.column).and_then(|v| v.clone()),
                stats.max.get(filter.column).and_then(|v| v.clone()),
            );
            if let (Some(min), Some(max)) = (min, max) {
                if let (Ok(lo), Ok(hi), Ok(c)) = (min.as_f64(), max.as_f64(), filter.value.as_f64())
                {
                    if hi > lo {
                        let frac = ((c - lo) / (hi - lo)).clamp(0.0, 1.0);
                        return match filter.op {
                            CmpOp::Lt | CmpOp::LtEq => frac.max(1e-6),
                            _ => (1.0 - frac).max(1e-6),
                        };
                    }
                }
            }
            1.0 / 3.0
        }
    }
}

/// Estimated number of rows of `table` surviving all of `filters`
/// (independence assumed, as in System R).
pub fn estimate_filtered_rows(stats: &TableStats, filters: &[&ColumnFilter]) -> usize {
    let mut rows = stats.rows as f64;
    for f in filters {
        rows *= filter_selectivity(f, stats);
    }
    rows.round().max(1.0) as usize
}

/// Estimated cardinality of an equi-join between two inputs.
///
/// `|L ⋈ S| = |L| * |R| / max(d_L, d_R)` where `d` are the distinct counts
/// of the join keys (0 = unknown → assume key-foreign-key, i.e. the larger
/// row count).
pub fn estimate_join_rows(
    left_rows: usize,
    left_distinct: usize,
    right_rows: usize,
    right_distinct: usize,
) -> usize {
    let dl = if left_distinct > 0 {
        left_distinct
    } else {
        left_rows.max(1)
    };
    let dr = if right_distinct > 0 {
        right_distinct
    } else {
        right_rows.max(1)
    };
    let denom = dl.max(dr).max(1);
    ((left_rows as f64) * (right_rows as f64) / denom as f64)
        .round()
        .max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(op: CmpOp, v: f64) -> ColumnFilter {
        ColumnFilter {
            table: 0,
            column: 0,
            op,
            value: Value::Float64(v),
        }
    }

    fn stats() -> TableStats {
        TableStats {
            rows: 1000,
            distinct: vec![100],
            min: vec![Some(Value::Float64(0.0))],
            max: vec![Some(Value::Float64(100.0))],
        }
    }

    #[test]
    fn equality_uses_distinct_count() {
        let s = stats();
        let sel = filter_selectivity(&filter(CmpOp::Eq, 5.0), &s);
        assert!((sel - 0.01).abs() < 1e-9);
        let sel = filter_selectivity(&filter(CmpOp::NotEq, 5.0), &s);
        assert!((sel - 0.99).abs() < 1e-9);
    }

    #[test]
    fn range_interpolates_within_bounds() {
        let s = stats();
        let sel = filter_selectivity(&filter(CmpOp::Lt, 25.0), &s);
        assert!((sel - 0.25).abs() < 1e-9);
        let sel = filter_selectivity(&filter(CmpOp::GtEq, 25.0), &s);
        assert!((sel - 0.75).abs() < 1e-9);
        // Out-of-range constants clamp.
        assert!(filter_selectivity(&filter(CmpOp::Lt, -5.0), &s) <= 1e-5);
        assert!((filter_selectivity(&filter(CmpOp::Gt, -5.0), &s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_without_bounds_falls_back() {
        let s = TableStats::unknown(1000, 1);
        let sel = filter_selectivity(&filter(CmpOp::Lt, 25.0), &s);
        assert!((sel - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.distinct_or(0, 42), 42);
    }

    #[test]
    fn filtered_rows_multiply_selectivities() {
        let s = stats();
        let f1 = filter(CmpOp::Eq, 5.0);
        let f2 = filter(CmpOp::Lt, 50.0);
        let est = estimate_filtered_rows(&s, &[&f1, &f2]);
        assert_eq!(est, 5); // 1000 * 0.01 * 0.5
        assert_eq!(estimate_filtered_rows(&s, &[]), 1000);
    }

    #[test]
    fn join_estimation() {
        // Key–foreign-key: 1M rows joining 100k distinct keys on both sides.
        assert_eq!(
            estimate_join_rows(1_000_000, 100_000, 100_000, 100_000),
            1_000_000
        );
        // Unknown distincts assume the larger side is a key.
        assert_eq!(estimate_join_rows(1000, 0, 100, 0), 100);
        // Inflationary join: few distinct values on both sides.
        assert_eq!(estimate_join_rows(10_000, 10, 10_000, 10), 10_000_000);
    }
}
