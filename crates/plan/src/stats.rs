//! Cardinality estimation.
//!
//! The paper's optimizer "chooses the optimal evaluation plan using a greedy
//! approach, with the objective of minimizing the size of intermediate
//! results".  Estimation consults the statistics gathered by
//! `Catalog::analyze_table` in a fixed order:
//!
//! 1. **MCV list** — exact frequencies of the most common values (all
//!    values, for low-cardinality columns);
//! 2. **equi-depth histogram** — bucket counts with within-bucket
//!    interpolation (integer-aware, so `<` and `<=` differ by one point of
//!    the domain);
//! 3. **fallback heuristics** — classic System-R `1/distinct` equality and
//!    the textbook 1/3 range guess, used only for tables that were never
//!    analyzed.
//!
//! An analyzed table is allowed to estimate **zero** rows (empty table, or
//! an equality constant outside the observed domain); only unanalyzed
//! tables keep the conservative minimum of one row.

use hique_sql::analyze::ColumnFilter;
use hique_sql::ast::CmpOp;
use hique_storage::catalog::TableInfo;
use hique_types::{CmpKind, ColumnDistribution, Value};

/// Statistics snapshot of one base table, as the planner sees it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Total rows in the table.
    pub rows: usize,
    /// Whether `ANALYZE` ever ran on the table.  When false the per-column
    /// distributions are empty and estimation falls back to heuristics.
    pub analyzed: bool,
    /// Per-column distributions (MCVs + histogram), aligned with the schema.
    pub cols: Vec<ColumnDistribution>,
}

impl TableStats {
    /// Extract a snapshot from catalog metadata.
    pub fn from_table(info: &TableInfo) -> Self {
        let n = info.schema.len();
        let analyzed = !info.column_stats.is_empty();
        let mut cols = vec![ColumnDistribution::default(); n];
        for (i, cs) in info.column_stats.iter().enumerate().take(n) {
            cols[i] = cs.distribution.clone();
        }
        TableStats {
            rows: info.row_count(),
            analyzed,
            cols,
        }
    }

    /// Statistics for a table the planner knows nothing about beyond its row
    /// count (used in unit tests and for freshly generated data).
    pub fn unknown(rows: usize, columns: usize) -> Self {
        TableStats {
            rows,
            analyzed: false,
            cols: vec![ColumnDistribution::default(); columns],
        }
    }

    /// Statistics built from explicit per-column value snapshots (analyzed).
    pub fn from_columns(rows: usize, columns: Vec<ColumnDistribution>) -> Self {
        TableStats {
            rows,
            analyzed: true,
            cols: columns,
        }
    }

    /// The collected distribution of a column, when the table was analyzed.
    pub fn distribution(&self, column: usize) -> Option<&ColumnDistribution> {
        if self.analyzed {
            self.cols.get(column)
        } else {
            None
        }
    }

    /// Distinct count of a column, falling back to a default guess.
    pub fn distinct_or(&self, column: usize, default: usize) -> usize {
        match self.cols.get(column) {
            Some(d) if d.distinct > 0 => d.distinct,
            _ => default,
        }
    }

    /// Minimum observed value of a column.
    pub fn min(&self, column: usize) -> Option<&Value> {
        self.cols.get(column).and_then(|d| d.min())
    }

    /// Maximum observed value of a column.
    pub fn max(&self, column: usize) -> Option<&Value> {
        self.cols.get(column).and_then(|d| d.max())
    }
}

/// Map the SQL comparison operator onto the estimator's comparison kind.
fn cmp_kind(op: CmpOp) -> CmpKind {
    match op {
        CmpOp::Eq => CmpKind::Eq,
        CmpOp::NotEq => CmpKind::NotEq,
        CmpOp::Lt => CmpKind::Lt,
        CmpOp::LtEq => CmpKind::LtEq,
        CmpOp::Gt => CmpKind::Gt,
        CmpOp::GtEq => CmpKind::GtEq,
    }
}

/// Estimated selectivity of a single filter: MCV list first, then histogram
/// buckets, then the unanalyzed-table heuristics (equality `1/distinct`,
/// range 1/3, inequality keeps almost everything).
pub fn filter_selectivity(filter: &ColumnFilter, stats: &TableStats) -> f64 {
    if let Some(dist) = stats.distribution(filter.column) {
        return dist.cmp_fraction(cmp_kind(filter.op), &filter.value);
    }
    let distinct = stats.distinct_or(filter.column, 10);
    match filter.op {
        CmpOp::Eq => 1.0 / distinct as f64,
        CmpOp::NotEq => 1.0 - 1.0 / distinct as f64,
        CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq => 1.0 / 3.0,
    }
}

/// Estimated number of rows of `table` surviving all of `filters`.
///
/// Filters over the **same column** are intersected through the column's
/// distribution (so `x > 20 AND x < 10` estimates zero rather than the
/// product of two selectivities); independence is assumed only *across*
/// columns, as in System R.
///
/// Analyzed tables may estimate zero — an empty table, or a conjunction
/// that is impossible against the observed domain, estimates no output at
/// all.  Unanalyzed tables keep the conservative minimum of one row.
pub fn estimate_filtered_rows(stats: &TableStats, filters: &[&ColumnFilter]) -> usize {
    let mut by_column: std::collections::BTreeMap<usize, Vec<&ColumnFilter>> = Default::default();
    for f in filters {
        by_column.entry(f.column).or_default().push(f);
    }
    let mut rows = stats.rows as f64;
    let mut impossible = false;
    for (column, fs) in by_column {
        let sel = match stats.distribution(column) {
            Some(dist) => {
                let preds: Vec<(CmpKind, &Value)> =
                    fs.iter().map(|f| (cmp_kind(f.op), &f.value)).collect();
                dist.conjunction_fraction(&preds)
            }
            None => fs.iter().map(|f| filter_selectivity(f, stats)).product(),
        };
        impossible |= sel == 0.0;
        rows *= sel;
    }
    if stats.analyzed && (stats.rows == 0 || impossible) {
        return 0;
    }
    rows.round().max(1.0) as usize
}

/// Estimated cardinality of an equi-join between two inputs.
///
/// `|L ⋈ R| = |L| * |R| / max(d_L, d_R)` where `d` are the distinct counts
/// of the join keys (0 = unknown → assume key-foreign-key, i.e. the larger
/// row count).
pub fn estimate_join_rows(
    left_rows: usize,
    left_distinct: usize,
    right_rows: usize,
    right_distinct: usize,
) -> usize {
    if left_rows == 0 || right_rows == 0 {
        return 0;
    }
    let dl = if left_distinct > 0 {
        left_distinct
    } else {
        left_rows.max(1)
    };
    let dr = if right_distinct > 0 {
        right_distinct
    } else {
        right_rows.max(1)
    };
    let denom = dl.max(dr).max(1);
    ((left_rows as f64) * (right_rows as f64) / denom as f64)
        .round()
        .max(1.0) as usize
}

/// Histogram-aware equi-join estimate.
///
/// When both join keys carry collected distributions, the key domains are
/// intersected first: rows whose key falls outside `[max(min_L, min_R),
/// min(max_L, max_R)]` cannot match, so both inputs (and their distinct
/// counts) are scaled by the in-overlap fraction before the classic
/// `|L|*|R|/max(d_L, d_R)` formula runs.  Disjoint key domains estimate
/// zero.  Without distributions this degrades to [`estimate_join_rows`]
/// with the provided distinct hints.
///
/// `filter_clamp` is a multiplier in `(0, 1]` produced by
/// [`correlated_range_clamp`]: it intersects the *predicate-filtered* key
/// domains of the two sides (concretely, correlated date windows such as
/// Q3's `o_orderdate < D` against `l_shipdate > D`), which the raw
/// column-domain overlap above cannot see.  Pass `1.0` when the sides carry
/// no correlated predicates.
pub fn estimate_join_rows_dist(
    left_rows: usize,
    left_key: Option<&ColumnDistribution>,
    left_distinct_hint: usize,
    right_rows: usize,
    right_key: Option<&ColumnDistribution>,
    right_distinct_hint: usize,
    filter_clamp: f64,
) -> usize {
    if left_rows == 0 || right_rows == 0 {
        return 0;
    }
    let clamp = if filter_clamp > 0.0 && filter_clamp < 1.0 {
        filter_clamp
    } else {
        1.0
    };
    let clamped = |est: usize| -> usize {
        if est == 0 {
            0
        } else {
            (est as f64 * clamp).round().max(1.0) as usize
        }
    };
    let (l, r) = match (left_key, right_key) {
        (Some(l), Some(r)) if l.rows > 0 && r.rows > 0 => (l, r),
        _ => {
            let dl = left_key.map_or(left_distinct_hint, |d| d.distinct);
            let dr = right_key.map_or(right_distinct_hint, |d| d.distinct);
            return clamped(estimate_join_rows(left_rows, dl, right_rows, dr));
        }
    };
    let (Some(lmin), Some(lmax), Some(rmin), Some(rmax)) = (l.min(), l.max(), r.min(), r.max())
    else {
        return clamped(estimate_join_rows(
            left_rows, l.distinct, right_rows, r.distinct,
        ));
    };
    let lo = if lmin.total_cmp(rmin).is_ge() {
        lmin
    } else {
        rmin
    };
    let hi = if lmax.total_cmp(rmax).is_le() {
        lmax
    } else {
        rmax
    };
    if lo.total_cmp(hi).is_gt() {
        return 0; // disjoint key domains: no row can match
    }
    let overlap = |d: &ColumnDistribution| -> f64 {
        (d.le_fraction(hi, true) - d.le_fraction(lo, false)).clamp(0.0, 1.0)
    };
    let lfrac = overlap(l);
    let rfrac = overlap(r);
    if lfrac == 0.0 || rfrac == 0.0 {
        return 0;
    }
    let eff_left = left_rows as f64 * lfrac;
    let eff_right = right_rows as f64 * rfrac;
    let dl = (l.distinct as f64 * lfrac).max(1.0);
    let dr = (r.distinct as f64 * rfrac).max(1.0);
    (eff_left * eff_right / dl.max(dr) * clamp).round().max(1.0) as usize
}

/// Multiplier correcting a join estimate for *cross-table correlated range
/// predicates* — the predicate-filtered key-domain intersection the raw
/// column-domain overlap of [`estimate_join_rows_dist`] cannot express.
///
/// The motivating case is TPC-H Q3: `o_orderdate < D` on one join side and
/// `l_shipdate > D` on the other.  Both columns describe the same time axis
/// (their observed domains almost coincide), and a lineitem ships shortly
/// after its order is placed, so the two windows are strongly
/// anti-correlated across the `o_orderkey = l_orderkey` join: multiplying
/// the per-side selectivities (the independence assumption baked into the
/// filtered row counts) over-estimates the join by roughly 10×.
///
/// The correction intersects the two predicate windows on the shared axis:
/// when date-typed range predicates exist on both sides and the columns'
/// observed domains substantially overlap, the joint fraction is estimated
/// as the fraction of the domain satisfying *both* predicate sets at once,
/// floored by a square-root damping of the independent product — the
/// intersection is exact only if the two columns were equal across the
/// join, and the damping keeps the clamp conservative for loosely
/// correlated pairs.  Sides without such a predicate pair return `1.0`
/// (no correction); the clamp never raises an estimate.
pub fn correlated_range_clamp(
    left_filters: &[ColumnFilter],
    left: &TableStats,
    right_filters: &[ColumnFilter],
    right: &TableStats,
) -> f64 {
    // Date-typed columns carrying range/equality predicates, per side.
    let date_preds =
        |filters: &[ColumnFilter], stats: &TableStats| -> Vec<(usize, Vec<(CmpKind, Value)>)> {
            let mut by_column: std::collections::BTreeMap<usize, Vec<(CmpKind, Value)>> =
                Default::default();
            for f in filters {
                if !matches!(f.value, Value::Date(_)) {
                    continue;
                }
                if stats.distribution(f.column).is_none_or(|d| d.rows == 0) {
                    continue;
                }
                by_column
                    .entry(f.column)
                    .or_default()
                    .push((cmp_kind(f.op), f.value.clone()));
            }
            by_column.into_iter().collect()
        };
    let span = |stats: &TableStats, column: usize| -> Option<(i64, i64)> {
        let d = stats.distribution(column)?;
        match (d.min(), d.max()) {
            (Some(Value::Date(lo)), Some(Value::Date(hi))) => Some((*lo as i64, *hi as i64)),
            _ => None,
        }
    };

    let mut clamp = 1.0f64;
    for (lcol, lpreds) in date_preds(left_filters, left) {
        let Some((llo, lhi)) = span(left, lcol) else {
            continue;
        };
        for (rcol, rpreds) in date_preds(right_filters, right) {
            let Some((rlo, rhi)) = span(right, rcol) else {
                continue;
            };
            // The two columns must describe the same axis: their observed
            // domains overlap over at least half of each span.
            let inter = (lhi.min(rhi) - llo.max(rlo)) as f64;
            if inter <= 0.0 || inter < 0.5 * (lhi - llo) as f64 || inter < 0.5 * (rhi - rlo) as f64
            {
                continue;
            }
            let ldist = left.distribution(lcol).expect("checked above");
            let rdist = right.distribution(rcol).expect("checked above");
            fn as_refs(preds: &[(CmpKind, Value)]) -> Vec<(CmpKind, &Value)> {
                preds.iter().map(|(k, v)| (*k, v)).collect()
            }
            let s_l = ldist.conjunction_fraction(&as_refs(&lpreds));
            let s_r = rdist.conjunction_fraction(&as_refs(&rpreds));
            let independent = s_l * s_r;
            if independent <= 0.0 || independent >= 1.0 {
                continue;
            }
            // Both windows applied to one shared axis: the intersection of
            // the predicate-filtered domains, evaluated on *both* sides'
            // distributions and averaged so the clamp is independent of
            // which side the greedy search treats as the current
            // intermediate (the same edge is costed from both directions).
            let mut joint_preds = as_refs(&lpreds);
            joint_preds.extend(as_refs(&rpreds));
            let intersected = 0.5
                * (ldist.conjunction_fraction(&joint_preds)
                    + rdist.conjunction_fraction(&joint_preds));
            let corrected = intersected.max(independent * independent.sqrt());
            clamp = clamp.min((corrected / independent).min(1.0));
        }
    }
    clamp
}

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`
/// with both sides clamped to at least one row, so an exact estimate (and
/// the 0-vs-0 case) scores 1.0.  The standard accuracy metric for
/// cardinality estimators (Moerkotte et al., "Preventing bad plans by
/// bounding the impact of cardinality estimation errors", VLDB 2009).
pub fn q_error(estimated: usize, actual: usize) -> f64 {
    let e = estimated.max(1) as f64;
    let a = actual.max(1) as f64;
    (e / a).max(a / e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(op: CmpOp, v: Value) -> ColumnFilter {
        ColumnFilter {
            table: 0,
            column: 0,
            op,
            value: v,
        }
    }

    /// 1000 rows, integers 0..100 each appearing 10 times.
    fn analyzed_stats() -> TableStats {
        let values: Vec<Value> = (0..100)
            .flat_map(|v| std::iter::repeat_n(Value::Int32(v), 10))
            .collect();
        TableStats::from_columns(1000, vec![ColumnDistribution::build(values)])
    }

    #[test]
    fn equality_uses_observed_frequencies() {
        let s = analyzed_stats();
        let sel = filter_selectivity(&filter(CmpOp::Eq, Value::Int32(5)), &s);
        assert!((sel - 0.01).abs() < 1e-3, "{sel}");
        let sel = filter_selectivity(&filter(CmpOp::NotEq, Value::Int32(5)), &s);
        assert!((sel - 0.99).abs() < 1e-3, "{sel}");
    }

    #[test]
    fn equality_outside_domain_estimates_zero() {
        let s = analyzed_stats();
        assert_eq!(
            filter_selectivity(&filter(CmpOp::Eq, Value::Int32(500)), &s),
            0.0
        );
        let f = filter(CmpOp::Eq, Value::Int32(-3));
        assert_eq!(estimate_filtered_rows(&s, &[&f]), 0);
    }

    #[test]
    fn analyzed_empty_table_estimates_zero() {
        let s = TableStats::from_columns(0, vec![ColumnDistribution::default()]);
        assert_eq!(estimate_filtered_rows(&s, &[]), 0);
        let f = filter(CmpOp::Eq, Value::Int32(1));
        assert_eq!(estimate_filtered_rows(&s, &[&f]), 0);
        // An unanalyzed empty table keeps the conservative 1-row floor.
        let u = TableStats::unknown(0, 1);
        assert_eq!(estimate_filtered_rows(&u, &[]), 1);
    }

    #[test]
    fn zero_row_distribution_selectivities_are_finite_not_nan() {
        // Regression: a zero-row distribution must estimate through the
        // guarded ratio — a bare `matched / rows` division would hand the
        // planner NaN, and a NaN selectivity propagates into every cost
        // product, where `NaN < x` being always-false silently degenerates
        // the greedy join-order search.  This covers both the analyzed-empty
        // shape and a stale one (leftover MCV entries with rows reset).
        use hique_types::Bucket;
        let stale = ColumnDistribution {
            rows: 0,
            distinct: 5,
            mcv: vec![(Value::Int32(1), 3)],
            buckets: vec![Bucket {
                lo: Value::Int32(0),
                hi: Value::Int32(9),
                rows: 4,
                distinct: 4,
            }],
        };
        let s = TableStats::from_columns(0, vec![stale]);
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            let sel = filter_selectivity(&filter(op, Value::Int32(1)), &s);
            assert!(sel.is_finite(), "{op:?} estimated {sel}");
        }
        let f = filter(CmpOp::Eq, Value::Int32(1));
        assert_eq!(estimate_filtered_rows(&s, &[&f]), 0);
        let lo = filter(CmpOp::GtEq, Value::Int32(0));
        let hi = filter(CmpOp::Lt, Value::Int32(9));
        assert_eq!(estimate_filtered_rows(&s, &[&lo, &hi]), 0);
    }

    #[test]
    fn range_interpolates_within_histogram() {
        let s = analyzed_stats();
        let sel = filter_selectivity(&filter(CmpOp::Lt, Value::Int32(25)), &s);
        assert!((sel - 0.25).abs() < 0.02, "{sel}");
        let sel = filter_selectivity(&filter(CmpOp::GtEq, Value::Int32(25)), &s);
        assert!((sel - 0.75).abs() < 0.02, "{sel}");
        // Out-of-range constants clamp to nothing / everything.
        assert_eq!(
            filter_selectivity(&filter(CmpOp::Lt, Value::Int32(-5)), &s),
            0.0
        );
        let sel = filter_selectivity(&filter(CmpOp::Gt, Value::Int32(-5)), &s);
        assert!((sel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lt_and_lteq_differ_on_integer_columns() {
        let s = analyzed_stats();
        let lt = filter_selectivity(&filter(CmpOp::Lt, Value::Int32(50)), &s);
        let lteq = filter_selectivity(&filter(CmpOp::LtEq, Value::Int32(50)), &s);
        // `<= 50` admits exactly one more value (10 more rows of 1000).
        assert!(lteq > lt);
        assert!((lteq - lt - 0.01).abs() < 5e-3, "lt {lt} lteq {lteq}");
        // Same distinction through the full row estimate.
        let f_lt = filter(CmpOp::Lt, Value::Int32(50));
        let f_le = filter(CmpOp::LtEq, Value::Int32(50));
        let r_lt = estimate_filtered_rows(&s, &[&f_lt]);
        let r_le = estimate_filtered_rows(&s, &[&f_le]);
        assert_eq!(r_le - r_lt, 10, "lt {r_lt} lteq {r_le}");
    }

    #[test]
    fn same_column_filters_intersect() {
        let s = analyzed_stats();
        // 20 <= x < 40 keeps ~200 of 1000 rows.
        let f1 = filter(CmpOp::GtEq, Value::Int32(20));
        let f2 = filter(CmpOp::Lt, Value::Int32(40));
        let est = estimate_filtered_rows(&s, &[&f1, &f2]);
        assert!((190..=210).contains(&est), "{est}");
        // Contradictory bounds on one column are recognized as impossible.
        let f1 = filter(CmpOp::Gt, Value::Int32(70));
        let f2 = filter(CmpOp::Lt, Value::Int32(30));
        assert_eq!(estimate_filtered_rows(&s, &[&f1, &f2]), 0);
        // An equality that violates a range on the same column is impossible
        // too, while a consistent one keeps the equality estimate.
        let eq = filter(CmpOp::Eq, Value::Int32(50));
        let below = filter(CmpOp::Lt, Value::Int32(40));
        assert_eq!(estimate_filtered_rows(&s, &[&eq, &below]), 0);
        let above = filter(CmpOp::Gt, Value::Int32(40));
        assert_eq!(estimate_filtered_rows(&s, &[&eq, &above]), 10);
    }

    #[test]
    fn range_without_statistics_falls_back() {
        let s = TableStats::unknown(1000, 1);
        let sel = filter_selectivity(&filter(CmpOp::Lt, Value::Float64(25.0)), &s);
        assert!((sel - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.distinct_or(0, 42), 42);
        let sel = filter_selectivity(&filter(CmpOp::Eq, Value::Float64(25.0)), &s);
        assert!((sel - 0.1).abs() < 1e-9);
    }

    #[test]
    fn filters_on_different_columns_multiply_selectivities() {
        // Two columns with the same 0..100 x10 shape.
        let column = || {
            ColumnDistribution::build(
                (0..100)
                    .flat_map(|v| std::iter::repeat_n(Value::Int32(v), 10))
                    .collect(),
            )
        };
        let s = TableStats::from_columns(1000, vec![column(), column()]);
        let f1 = filter(CmpOp::Eq, Value::Int32(5));
        let mut f2 = filter(CmpOp::Lt, Value::Int32(50));
        f2.column = 1;
        let est = estimate_filtered_rows(&s, &[&f1, &f2]);
        assert!((4..=6).contains(&est), "~1000 * 0.01 * 0.5, got {est}");
        assert_eq!(estimate_filtered_rows(&s, &[]), 1000);
    }

    #[test]
    fn join_estimation() {
        // Key–foreign-key: 1M rows joining 100k distinct keys on both sides.
        assert_eq!(
            estimate_join_rows(1_000_000, 100_000, 100_000, 100_000),
            1_000_000
        );
        // Unknown distincts assume the larger side is a key.
        assert_eq!(estimate_join_rows(1000, 0, 100, 0), 100);
        // Inflationary join: few distinct values on both sides.
        assert_eq!(estimate_join_rows(10_000, 10, 10_000, 10), 10_000_000);
        // Empty inputs estimate an empty join.
        assert_eq!(estimate_join_rows(0, 10, 10_000, 10), 0);
    }

    #[test]
    fn join_estimation_uses_domain_overlap() {
        let keys = |range: std::ops::Range<i32>| {
            ColumnDistribution::build(range.map(Value::Int32).collect())
        };
        let l = keys(0..1000);
        let r = keys(0..1000);
        // Full overlap behaves like the classic formula.
        assert_eq!(
            estimate_join_rows_dist(1000, Some(&l), 0, 1000, Some(&r), 0, 1.0),
            1000
        );
        // Half overlap: only the shared half of each domain can match.
        let r_half = keys(500..1500);
        let est = estimate_join_rows_dist(1000, Some(&l), 0, 1000, Some(&r_half), 0, 1.0);
        assert!((400..=600).contains(&est), "{est}");
        // Disjoint domains cannot match at all.
        let r_far = keys(5000..6000);
        assert_eq!(
            estimate_join_rows_dist(1000, Some(&l), 0, 1000, Some(&r_far), 0, 1.0),
            0
        );
        // Missing distributions degrade to the hint-based formula.
        assert_eq!(
            estimate_join_rows_dist(1000, None, 100, 500, None, 100, 1.0),
            5000
        );
    }

    #[test]
    fn correlated_date_windows_clamp_join_estimates() {
        let dates =
            |lo: i32, hi: i32| ColumnDistribution::build((lo..hi).map(Value::Date).collect());
        let f = |op, v| ColumnFilter {
            table: 0,
            column: 0,
            op,
            value: Value::Date(v),
        };
        let left = TableStats::from_columns(2000, vec![dates(0, 2000)]);
        let right = TableStats::from_columns(2000, vec![dates(0, 2000)]);

        // Q3 shape: `left < D` against `right > D` — the predicate windows
        // are disjoint on the shared axis, so the clamp falls to the
        // square-root damping floor sqrt(s_l * s_r).
        let lf = [f(CmpOp::Lt, 1000)];
        let rf = [f(CmpOp::Gt, 1000)];
        let clamp = correlated_range_clamp(&lf, &left, &rf, &right);
        assert!((clamp - 0.5).abs() < 0.05, "{clamp}");
        // Direction-independent: the greedy search costs the same edge from
        // both sides, so swapped roles must produce the same clamp.
        let swapped = correlated_range_clamp(&rf, &right, &lf, &left);
        assert!((clamp - swapped).abs() < 1e-9, "{clamp} vs {swapped}");

        // Aligned windows (`> D` on both sides): the intersection equals
        // each window, so positively correlated predicates are not clamped.
        let rf_same = [f(CmpOp::Gt, 1000)];
        let clamp = correlated_range_clamp(&rf_same, &left, &rf_same, &right);
        assert_eq!(clamp, 1.0);

        // A predicate on only one side, a non-date predicate pair, or
        // disjoint observed domains: no correction.
        assert_eq!(correlated_range_clamp(&lf, &left, &[], &right), 1.0);
        let ints = TableStats::from_columns(
            2000,
            vec![ColumnDistribution::build(
                (0..2000).map(Value::Int32).collect(),
            )],
        );
        let int_f = [ColumnFilter {
            table: 0,
            column: 0,
            op: CmpOp::Gt,
            value: Value::Int32(1000),
        }];
        assert_eq!(correlated_range_clamp(&int_f, &ints, &int_f, &ints), 1.0);
        let far = TableStats::from_columns(2000, vec![dates(10_000, 12_000)]);
        let far_f = [f(CmpOp::Lt, 11_000)];
        assert_eq!(correlated_range_clamp(&lf, &left, &far_f, &far), 1.0);

        // The clamp scales the join estimate itself.
        let keys = ColumnDistribution::build((0..1000).map(Value::Int32).collect());
        let unclamped = estimate_join_rows_dist(1000, Some(&keys), 0, 1000, Some(&keys), 0, 1.0);
        let clamped = estimate_join_rows_dist(1000, Some(&keys), 0, 1000, Some(&keys), 0, 0.5);
        assert_eq!(clamped, unclamped / 2);
        // Out-of-range multipliers are ignored rather than amplifying.
        assert_eq!(
            estimate_join_rows_dist(1000, Some(&keys), 0, 1000, Some(&keys), 0, 7.0),
            unclamped
        );
        // Empty inputs still estimate zero whatever the clamp.
        assert_eq!(
            estimate_join_rows_dist(0, Some(&keys), 0, 1000, Some(&keys), 0, 0.5),
            0
        );
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(100, 100), 1.0);
        assert_eq!(q_error(10, 100), 10.0);
        assert_eq!(q_error(100, 10), 10.0);
        assert_eq!(q_error(0, 0), 1.0);
        assert_eq!(q_error(0, 5), 5.0);
        assert_eq!(q_error(5, 0), 5.0);
    }
}
