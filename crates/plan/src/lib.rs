//! # hique-plan
//!
//! Query optimizer for the HIQUE reproduction.  Mirroring the paper (§IV),
//! the optimizer "chooses the optimal evaluation plan using a greedy
//! approach, with the objective of minimizing the size of intermediate
//! results", selects the evaluation algorithm for every operator, keeps
//! track of interesting orders and **join teams**, and emits the parameters
//! each engine needs to instantiate its operators.
//!
//! The optimizer's output is a [`physical::PhysicalPlan`]:
//!
//! * one [`physical::StagedTable`] per base table — which filters to apply,
//!   which columns to keep (projection during staging, the paper's trick for
//!   shrinking tuples before joins), and how to stage (sort / fine
//!   partition / coarse partition / hybrid);
//! * a join order with a [`physical::JoinStep`] per join and the chosen
//!   [`physical::JoinAlgorithm`], or a [`physical::JoinTeam`] when every
//!   join shares a common key;
//! * the aggregation specification and [`physical::AggAlgorithm`];
//! * the final ordering, limit and output expressions rebound over the
//!   joined record layout.
//!
//! All engines (iterator, DSM, holistic, bytecode VM) execute this same
//! plan, so measured differences come from the execution model, not plan
//! quality — the comparison the paper is designed around.

#![forbid(unsafe_code)]

pub mod config;
pub mod explain;
pub mod joinorder;
pub mod optimizer;
pub mod physical;
pub mod provider;
pub mod shape;
pub mod stats;

pub use config::PlannerConfig;
pub use explain::{explain, explain_with_actuals, explain_with_stats, PlanActuals};
pub use optimizer::plan_query;
pub use physical::{
    AggAlgorithm, AggregateSpec, JoinAlgorithm, JoinStep, JoinTeam, PhysicalPlan, StagedTable,
    StagingStrategy,
};
pub use provider::CatalogProvider;
pub use shape::{shape_class, shape_class_and_consts, shape_key};
