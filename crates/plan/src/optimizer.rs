//! The query optimizer: from a [`BoundQuery`] to a [`PhysicalPlan`].
//!
//! Responsibilities (paper §IV):
//!
//! 1. estimate per-table cardinalities after filters;
//! 2. choose a greedy join order minimising intermediate results;
//! 3. detect join teams (all joins over one common key) and fuse them;
//! 4. pick the evaluation algorithm of every operator (merge / partition /
//!    hybrid hash-sort-merge join; sort / hybrid hash-sort / map
//!    aggregation) from the statistics and cache parameters;
//! 5. decide how each input is staged (filters, projection, sorting or
//!    partitioning) and emit the parameters the code templates need.

use hique_sql::analyze::{BoundQuery, ColumnFilter, OutputExpr, ScalarExpr};
use hique_storage::Catalog;
use hique_types::{HiqueError, Result, Schema};

use crate::config::PlannerConfig;
use crate::joinorder::{detect_join_team, greedy_order};
use crate::physical::{
    AggAlgorithm, AggregateSpec, JoinAlgorithm, JoinStep, JoinTeam, PhysicalPlan, StagedTable,
    StagingStrategy,
};
use crate::stats::{
    correlated_range_clamp, estimate_filtered_rows, estimate_join_rows_dist, TableStats,
};

/// Optimize a bound query into a physical plan.
pub fn plan_query(
    bound: &BoundQuery,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> Result<PhysicalPlan> {
    let n = bound.tables.len();

    // ---- Statistics ----------------------------------------------------
    let stats: Vec<TableStats> = bound
        .tables
        .iter()
        .map(|t| catalog.table(&t.name).map(TableStats::from_table))
        .collect::<Result<_>>()?;

    // ---- Filters grouped per table --------------------------------------
    let mut filters_per_table: Vec<Vec<ColumnFilter>> = vec![Vec::new(); n];
    for f in &bound.filters {
        filters_per_table[f.table].push(f.clone());
    }
    let estimated_rows: Vec<usize> = (0..n)
        .map(|t| {
            let refs: Vec<&ColumnFilter> = filters_per_table[t].iter().collect();
            estimate_filtered_rows(&stats[t], &refs)
        })
        .collect();

    // ---- Columns each table must keep after staging ----------------------
    let keep_per_table = compute_needed_columns(bound);

    // ---- Join ordering ----------------------------------------------------
    let estimate_pair = |current_est: usize, candidate: usize, edge: usize| -> usize {
        let j = &bound.joins[edge];
        let (cand_col, other_table, other_col) = if j.left_table == candidate {
            (j.left_column, j.right_table, j.right_column)
        } else {
            (j.right_column, j.left_table, j.left_column)
        };
        let cand_distinct = stats[candidate].distinct_or(cand_col, estimated_rows[candidate]);
        let other_distinct = stats[other_table].distinct_or(other_col, current_est);
        // Correlated range predicates across the edge (e.g. Q3's
        // o_orderdate/l_shipdate pair) shrink the predicate-filtered key
        // domains beyond what the raw column-domain overlap sees.
        let clamp = correlated_range_clamp(
            &filters_per_table[other_table],
            &stats[other_table],
            &filters_per_table[candidate],
            &stats[candidate],
        );
        // The left side may be an intermediate result; its join-key values
        // still come from the base table owning the other end of the edge,
        // so that column's distribution bounds the key domain overlap.
        estimate_join_rows_dist(
            current_est,
            stats[other_table].distribution(other_col),
            other_distinct,
            estimated_rows[candidate],
            stats[candidate].distribution(cand_col),
            cand_distinct,
            clamp,
        )
    };
    let order = greedy_order(&estimated_rows, &bound.joins, &estimate_pair);

    // ---- Join team detection -----------------------------------------------
    let team_members = if config.enable_join_teams {
        detect_join_team(n, &bound.joins)
    } else {
        None
    };

    // ---- Choose join algorithms and staging per table ------------------------
    let mut strategies: Vec<StagingStrategy> = vec![StagingStrategy::None; n];
    let mut joins: Vec<JoinStep> = Vec::new();
    let mut join_team: Option<JoinTeam> = None;
    let mut join_order = order.order.clone();

    // Staged tuple widths, used to size partitions against the L2 cache.
    let staged_width = |t: usize| -> usize {
        keep_per_table[t]
            .iter()
            .map(|&c| bound.tables[t].schema.column(c).dtype.width())
            .sum::<usize>()
            .max(1)
    };
    let partitions_for = |rows: usize, width: usize| -> usize {
        let bytes = rows.saturating_mul(width);
        let target = (config.l2_cache_bytes / 2).max(1);
        (bytes.div_ceil(target)).next_power_of_two().max(1)
    };

    if let Some(members) = &team_members {
        // Every join shares a common key: fuse into a join team.  Member
        // order: largest (probe) table first, as the generated deeply-nested
        // loops iterate the first table outermost.
        let mut members = members.clone();
        members.sort_by_key(|&(t, _)| std::cmp::Reverse(estimated_rows[t]));
        let algorithm = match config.force_join_algorithm {
            Some(JoinAlgorithm::Merge) => JoinAlgorithm::Merge,
            Some(JoinAlgorithm::HybridHashSortMerge) | Some(JoinAlgorithm::Partition) => {
                JoinAlgorithm::HybridHashSortMerge
            }
            _ => {
                // Merge when every member fits in the L2 cache once staged,
                // hybrid hash-sort otherwise.
                let all_fit = members.iter().all(|&(t, _)| {
                    estimated_rows[t].saturating_mul(staged_width(t)) <= config.l2_cache_bytes
                });
                if all_fit {
                    JoinAlgorithm::Merge
                } else {
                    JoinAlgorithm::HybridHashSortMerge
                }
            }
        };
        for &(t, key) in &members {
            let staged_key = staged_index(&keep_per_table[t], key);
            strategies[t] = match algorithm {
                JoinAlgorithm::Merge => StagingStrategy::Sort {
                    key_columns: vec![staged_key],
                },
                _ => StagingStrategy::PartitionThenSort {
                    key_column: staged_key,
                    partitions: partitions_for(estimated_rows[t], staged_width(t)),
                },
            };
        }
        join_order = members.iter().map(|&(t, _)| t).collect();
        join_team = Some(JoinTeam {
            members: join_order.clone(),
            key_columns: members
                .iter()
                .map(|&(t, key)| staged_index(&keep_per_table[t], key))
                .collect(),
            algorithm,
        });
    } else if n > 1 {
        // Binary join cascade following the greedy order.
        for (step_idx, &table) in join_order.iter().enumerate().skip(1) {
            let edge = order.edges[step_idx - 1].ok_or_else(|| {
                HiqueError::Plan(format!(
                    "query requires a cross product involving table '{}' which is not supported",
                    bound.tables[table].qualifier
                ))
            })?;
            let j = &bound.joins[edge];
            let (right_col_base, left_table, left_col_base) = if j.left_table == table {
                (j.left_column, j.right_table, j.right_column)
            } else {
                (j.right_column, j.left_table, j.left_column)
            };

            // Algorithm choice.
            let current_est = order.estimates[step_idx - 1];
            let left_bytes = current_est.saturating_mul(staged_width(left_table));
            let right_bytes = estimated_rows[table].saturating_mul(staged_width(table));
            let key_distinct = stats[table].distinct_or(right_col_base, usize::MAX);
            let algorithm = match config.force_join_algorithm {
                Some(a) => a,
                None => {
                    if key_distinct <= config.fine_partition_limit {
                        JoinAlgorithm::Partition
                    } else if left_bytes <= config.l2_cache_bytes
                        && right_bytes <= config.l2_cache_bytes
                    {
                        JoinAlgorithm::Merge
                    } else {
                        JoinAlgorithm::HybridHashSortMerge
                    }
                }
            };

            // Staging of the newly joined (right) table.
            let right_staged_key = staged_index(&keep_per_table[table], right_col_base);
            strategies[table] = staging_for_join(
                algorithm,
                right_staged_key,
                partitions_for(estimated_rows[table], staged_width(table)),
                key_distinct,
            );
            // The first (build) table of the pipeline is staged the same way.
            if step_idx == 1 {
                let left_staged_key = staged_index(&keep_per_table[left_table], left_col_base);
                strategies[left_table] = staging_for_join(
                    algorithm,
                    left_staged_key,
                    partitions_for(estimated_rows[left_table], staged_width(left_table)),
                    stats[left_table].distinct_or(left_col_base, usize::MAX),
                );
            }

            // Join-key position within the joined-so-far schema.
            let left_key = joined_offset(
                &join_order[..step_idx],
                &keep_per_table,
                left_table,
                left_col_base,
            )?;
            joins.push(JoinStep {
                right: table,
                left_key,
                right_key: right_staged_key,
                algorithm,
                estimated_rows: order.estimates[step_idx],
            });
        }
    }

    // ---- Staged tables ----------------------------------------------------
    let staged: Vec<StagedTable> = (0..n)
        .map(|t| {
            let schema = bound.tables[t].schema.project(&keep_per_table[t]);
            StagedTable {
                table: t,
                table_name: bound.tables[t].name.clone(),
                filters: filters_per_table[t].clone(),
                keep: keep_per_table[t].clone(),
                schema,
                strategy: strategies[t].clone(),
                estimated_rows: estimated_rows[t],
            }
        })
        .collect();

    // ---- Joined schema and rebinding ---------------------------------------
    let joined_schema = join_order
        .iter()
        .fold(Schema::empty(), |acc, &t| acc.join(&staged[t].schema));

    let rebind_col = |combined_idx: usize| -> Result<usize> {
        let name = &bound.combined_schema.column(combined_idx).name;
        joined_schema.index_of(name)
    };
    let rebind_scalar =
        |e: &ScalarExpr| rebind_scalar_expr(e, &bound.combined_schema, &joined_schema);

    let group_columns: Vec<usize> = bound
        .group_by
        .iter()
        .map(|&g| rebind_col(g))
        .collect::<Result<_>>()?;

    // ---- Aggregation specification ---------------------------------------
    let aggregate = if bound.is_aggregate() {
        let aggregates = bound
            .aggregates
            .iter()
            .map(|a| {
                Ok(hique_sql::analyze::BoundAggregate {
                    func: a.func,
                    arg: a.arg.as_ref().map(&rebind_scalar).transpose()?,
                    dtype: a.dtype,
                })
            })
            .collect::<Result<Vec<_>>>()?;

        // Distinct-count estimates of the grouping columns: map back to the
        // base tables' statistics through the combined schema.
        let group_domain_sizes: Vec<usize> = bound
            .group_by
            .iter()
            .map(|&g| {
                let (t, c) = locate(bound, g);
                stats[t].distinct_or(c, 0)
            })
            .collect();
        let total_groups: Option<usize> = group_domain_sizes.iter().try_fold(1usize, |acc, &d| {
            if d == 0 {
                None
            } else {
                acc.checked_mul(d)
            }
        });

        let algorithm = match config.force_agg_algorithm {
            Some(a) => a,
            None => {
                if group_columns.is_empty() {
                    // A single global group: map aggregation degenerates to a
                    // handful of accumulators.
                    AggAlgorithm::Map
                } else if let Some(groups) = total_groups {
                    if groups <= config.map_agg_group_limit(aggregates.len()) {
                        AggAlgorithm::Map
                    } else {
                        AggAlgorithm::HybridHashSort
                    }
                } else {
                    AggAlgorithm::HybridHashSort
                }
            }
        };

        Some(AggregateSpec {
            group_columns: group_columns.clone(),
            aggregates,
            algorithm,
            group_domain_sizes,
        })
    } else {
        None
    };

    // For a single-table aggregate query the table's staging is dictated by
    // the aggregation algorithm (joins take precedence otherwise).
    if n == 1 && bound.joins.is_empty() {
        if let Some(spec) = &aggregate {
            let t = 0usize;
            strategies[t] = match spec.algorithm {
                AggAlgorithm::Map => StagingStrategy::None,
                AggAlgorithm::Sort => StagingStrategy::Sort {
                    key_columns: spec.group_columns.clone(),
                },
                AggAlgorithm::HybridHashSort => {
                    if let Some(&first) = spec.group_columns.first() {
                        StagingStrategy::PartitionThenSort {
                            key_column: first,
                            partitions: partitions_for(estimated_rows[t], staged_width(t)),
                        }
                    } else {
                        StagingStrategy::None
                    }
                }
            };
        }
    }
    // Re-assemble staged tables if the single-table aggregation overrode the
    // strategy (cheap; avoids plumbing mutability above).
    let staged: Vec<StagedTable> = staged
        .into_iter()
        .enumerate()
        .map(|(t, mut st)| {
            st.strategy = strategies[t].clone();
            st
        })
        .collect();

    // ---- Output expressions -------------------------------------------------
    let output: Vec<OutputExpr> = bound
        .output
        .iter()
        .map(|o| match o {
            OutputExpr::GroupColumn(ci) => Ok(OutputExpr::GroupColumn(rebind_col(*ci)?)),
            OutputExpr::Scalar(e) => Ok(OutputExpr::Scalar(rebind_scalar(e)?)),
            OutputExpr::Aggregate(i) => Ok(OutputExpr::Aggregate(*i)),
        })
        .collect::<Result<_>>()?;

    Ok(PhysicalPlan {
        query: bound.clone(),
        staged,
        join_order,
        joins,
        join_team,
        joined_schema,
        aggregate,
        output,
        output_schema: bound.output_schema.clone(),
        order_by: bound.order_by.clone(),
        limit: bound.limit,
        threads: config.threads.max(1),
        memory_budget_pages: config.memory_budget_pages,
    })
}

/// Columns of each table that must survive staging: join keys, grouping
/// columns, aggregate arguments and projected outputs.  Filters run during
/// the scan, so a column used *only* in a filter is dropped.
fn compute_needed_columns(bound: &BoundQuery) -> Vec<Vec<usize>> {
    let n = bound.tables.len();
    let mut needed: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    let add_combined = |needed: &mut Vec<std::collections::BTreeSet<usize>>, ci: usize| {
        let (t, c) = locate(bound, ci);
        needed[t].insert(c);
    };

    for j in &bound.joins {
        needed[j.left_table].insert(j.left_column);
        needed[j.right_table].insert(j.right_column);
    }
    for &g in &bound.group_by {
        add_combined(&mut needed, g);
    }
    let mut cols = Vec::new();
    for a in &bound.aggregates {
        if let Some(arg) = &a.arg {
            cols.clear();
            arg.collect_columns(&mut cols);
            for &ci in &cols {
                add_combined(&mut needed, ci);
            }
        }
    }
    for o in &bound.output {
        match o {
            OutputExpr::GroupColumn(ci) => add_combined(&mut needed, *ci),
            OutputExpr::Scalar(e) => {
                cols.clear();
                e.collect_columns(&mut cols);
                for &ci in &cols {
                    add_combined(&mut needed, ci);
                }
            }
            OutputExpr::Aggregate(_) => {}
        }
    }
    needed
        .into_iter()
        .map(|s| {
            if s.is_empty() {
                // Keep at least one (the narrowest) column so staged records
                // are non-empty, e.g. `SELECT count(*) FROM t`.
                vec![0]
            } else {
                s.into_iter().collect()
            }
        })
        .collect()
}

/// Map a combined-schema column index to (table, table-local column).
fn locate(bound: &BoundQuery, combined_idx: usize) -> (usize, usize) {
    let mut base = 0usize;
    for (t, table) in bound.tables.iter().enumerate() {
        if combined_idx < base + table.schema.len() {
            return (t, combined_idx - base);
        }
        base += table.schema.len();
    }
    unreachable!("combined column index {combined_idx} out of range")
}

/// Position of base-table column `col` within the staged (projected) schema.
fn staged_index(keep: &[usize], col: usize) -> usize {
    keep.iter()
        .position(|&k| k == col)
        .expect("join/group key retained by compute_needed_columns")
}

/// Offset of (`table`, base column `col`) inside the concatenation of staged
/// schemas for `placed` tables (in that order).
fn joined_offset(
    placed: &[usize],
    keep_per_table: &[Vec<usize>],
    table: usize,
    col: usize,
) -> Result<usize> {
    let mut off = 0usize;
    for &t in placed {
        if t == table {
            return Ok(off + staged_index(&keep_per_table[t], col));
        }
        off += keep_per_table[t].len();
    }
    Err(HiqueError::Plan(format!(
        "join references table {table} before it is placed in the join order"
    )))
}

fn staging_for_join(
    algorithm: JoinAlgorithm,
    key_column: usize,
    partitions: usize,
    key_distinct: usize,
) -> StagingStrategy {
    match algorithm {
        JoinAlgorithm::Merge => StagingStrategy::Sort {
            key_columns: vec![key_column],
        },
        JoinAlgorithm::Partition => StagingStrategy::PartitionFine {
            key_column,
            partitions: if key_distinct == usize::MAX {
                partitions
            } else {
                key_distinct
            },
        },
        JoinAlgorithm::HybridHashSortMerge => StagingStrategy::PartitionThenSort {
            key_column,
            partitions,
        },
        JoinAlgorithm::NestedLoops => StagingStrategy::None,
    }
}

/// Rebind a scalar expression from one schema to another by column name.
pub fn rebind_scalar_expr(expr: &ScalarExpr, from: &Schema, to: &Schema) -> Result<ScalarExpr> {
    Ok(match expr {
        ScalarExpr::Column { index, dtype } => ScalarExpr::Column {
            index: to.index_of(&from.column(*index).name)?,
            dtype: *dtype,
        },
        ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
        ScalarExpr::Binary {
            op,
            left,
            right,
            dtype,
        } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(rebind_scalar_expr(left, from, to)?),
            right: Box::new(rebind_scalar_expr(right, from, to)?),
            dtype: *dtype,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::CatalogProvider;
    use hique_sql::{analyze, parse_query};
    use hique_types::{Column, DataType, Row, Value};

    /// Catalog with orders (1k rows), lineitem (10k rows), customer (100).
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "customer",
            Schema::new(vec![
                Column::new("c_custkey", DataType::Int32),
                Column::new("c_mktsegment", DataType::Char(10)),
            ]),
        )
        .unwrap();
        cat.create_table(
            "orders",
            Schema::new(vec![
                Column::new("o_orderkey", DataType::Int32),
                Column::new("o_custkey", DataType::Int32),
                Column::new("o_orderdate", DataType::Date),
            ]),
        )
        .unwrap();
        cat.create_table(
            "lineitem",
            Schema::new(vec![
                Column::new("l_orderkey", DataType::Int32),
                Column::new("l_extendedprice", DataType::Float64),
                Column::new("l_discount", DataType::Float64),
                Column::new("l_shipdate", DataType::Date),
                Column::new("l_returnflag", DataType::Char(1)),
                Column::new("l_linestatus", DataType::Char(1)),
                Column::new("l_quantity", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..100 {
            cat.table_mut("customer")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i),
                    Value::Str(if i % 2 == 0 { "BUILDING" } else { "AUTOMOBILE" }.into()),
                ]))
                .unwrap();
        }
        for i in 0..1000 {
            cat.table_mut("orders")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 100),
                    Value::Date(9000 + (i % 300)),
                ]))
                .unwrap();
        }
        for i in 0..10_000 {
            cat.table_mut("lineitem")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 1000),
                    Value::Float64(100.0 + (i % 50) as f64),
                    Value::Float64(0.05),
                    Value::Date(9000 + (i % 400)),
                    Value::Str(if i % 4 == 0 { "R" } else { "N" }.into()),
                    Value::Str(if i % 2 == 0 { "O" } else { "F" }.into()),
                    Value::Float64((i % 40) as f64),
                ]))
                .unwrap();
        }
        for t in ["customer", "orders", "lineitem"] {
            cat.analyze_table(t).unwrap();
        }
        cat
    }

    fn plan(sql: &str, cat: &Catalog, config: &PlannerConfig) -> Result<PhysicalPlan> {
        let q = parse_query(sql)?;
        let bound = analyze(&q, &CatalogProvider::new(cat))?;
        plan_query(&bound, cat, config)
    }

    #[test]
    fn single_table_aggregate_uses_map_for_small_domains() {
        let cat = catalog();
        let p = plan(
            "select l_returnflag, l_linestatus, sum(l_quantity) as q, count(*) as n \
             from lineitem where l_shipdate <= '1998-12-01' \
             group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(p.staged.len(), 1);
        assert!(!p.has_joins());
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.algorithm, AggAlgorithm::Map);
        assert_eq!(agg.group_domain_sizes, vec![2, 2]);
        assert_eq!(p.staged[0].strategy, StagingStrategy::None);
        // Projection keeps only referenced columns: returnflag, linestatus,
        // quantity (+ nothing else; shipdate is filter-only).
        assert_eq!(p.staged[0].keep.len(), 3);
        assert_eq!(p.output_schema.len(), 4);
    }

    #[test]
    fn large_group_domain_switches_to_hybrid() {
        let cat = catalog();
        // Group on l_orderkey: 1000 distinct here, but shrink the cache so
        // the directories "overflow" it.
        let config = PlannerConfig {
            l2_cache_bytes: 16 * 1024,
            ..PlannerConfig::default()
        };
        let p = plan(
            "select l_orderkey, sum(l_quantity) as q from lineitem group by l_orderkey",
            &cat,
            &config,
        )
        .unwrap();
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.algorithm, AggAlgorithm::HybridHashSort);
        assert!(matches!(
            p.staged[0].strategy,
            StagingStrategy::PartitionThenSort { .. }
        ));
    }

    #[test]
    fn join_plan_orders_by_size_and_stages_inputs() {
        let cat = catalog();
        let p = plan(
            "select o.o_orderkey, l.l_extendedprice from orders o, lineitem l \
             where o.o_orderkey = l.l_orderkey and o.o_orderdate < '1995-01-01'",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert!(p.has_joins());
        assert_eq!(p.joins.len(), 1);
        assert!(p.join_team.is_none());
        // Both inputs staged with a join-compatible strategy.
        for st in &p.staged {
            assert!(!matches!(st.strategy, StagingStrategy::None));
        }
        // The joined schema contains the qualified key and payload columns.
        assert!(p.joined_schema.contains("o.o_orderkey"));
        assert!(p.joined_schema.contains("l.l_extendedprice"));
        // left_key/right_key point at the join key columns.
        let step = &p.joins[0];
        let left_name = &p.joined_schema.column(step.left_key).name;
        assert!(left_name.ends_with("orderkey"));
    }

    #[test]
    fn forced_join_algorithm_is_respected() {
        let cat = catalog();
        for algo in [
            JoinAlgorithm::Merge,
            JoinAlgorithm::Partition,
            JoinAlgorithm::HybridHashSortMerge,
        ] {
            let p = plan(
                "select o.o_orderkey from orders o, lineitem l where o.o_orderkey = l.l_orderkey",
                &cat,
                &PlannerConfig::default().with_join_algorithm(algo),
            )
            .unwrap();
            assert_eq!(p.joins[0].algorithm, algo);
        }
    }

    #[test]
    fn three_way_join_on_different_keys_is_a_cascade() {
        let cat = catalog();
        let p = plan(
            "select c.c_custkey, sum(l.l_extendedprice * (1 - l.l_discount)) as revenue \
             from customer c, orders o, lineitem l \
             where c.c_custkey = o.o_custkey and o.o_orderkey = l.l_orderkey \
             group by c.c_custkey order by revenue desc limit 20",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert!(p.join_team.is_none(), "different keys must not form a team");
        assert_eq!(p.joins.len(), 2);
        assert_eq!(p.join_order.len(), 3);
        assert_eq!(p.limit, Some(20));
        assert_eq!(p.order_by, vec![(1, false)]);
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_columns.len(), 1);
        assert_eq!(agg.aggregates.len(), 1);
    }

    #[test]
    fn common_key_star_becomes_join_team() {
        let mut cat = Catalog::new();
        for name in ["fact", "d1", "d2", "d3"] {
            cat.create_table(
                name,
                Schema::new(vec![
                    Column::new("k", DataType::Int32),
                    Column::new("v", DataType::Int32),
                ]),
            )
            .unwrap();
            let rows = if name == "fact" { 1000 } else { 100 };
            for i in 0..rows {
                cat.table_mut(name)
                    .unwrap()
                    .heap
                    .append_row(&Row::new(vec![Value::Int32(i % 100), Value::Int32(i)]))
                    .unwrap();
            }
            cat.analyze_table(name).unwrap();
        }
        let p = plan(
            "select fact.v from fact, d1, d2, d3 \
             where fact.k = d1.k and fact.k = d2.k and fact.k = d3.k",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap();
        let team = p.join_team.as_ref().expect("team expected");
        assert_eq!(team.members.len(), 4);
        assert!(p.joins.is_empty());
        // The largest table (fact) drives the team.
        assert_eq!(p.staged[p.join_order[0]].table_name, "fact");

        // Disabling teams falls back to a cascade.
        let p2 = plan(
            "select fact.v from fact, d1, d2, d3 \
             where fact.k = d1.k and fact.k = d2.k and fact.k = d3.k",
            &cat,
            &PlannerConfig::default().with_join_teams(false),
        )
        .unwrap();
        assert!(p2.join_team.is_none());
        assert_eq!(p2.joins.len(), 3);
    }

    #[test]
    fn cross_product_is_rejected() {
        let cat = catalog();
        let err = plan(
            "select o.o_orderkey from orders o, customer c",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HiqueError::Plan(_)));
    }

    #[test]
    fn count_star_only_query_keeps_one_column() {
        let cat = catalog();
        let p = plan(
            "select count(*) as n from orders",
            &cat,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(p.staged[0].keep, vec![0]);
        assert!(p.aggregate.is_some());
        assert_eq!(p.output_schema.names(), vec!["n"]);
    }
}
