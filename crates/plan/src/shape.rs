//! Query-shape keys for the server's prepared-plan cache.
//!
//! The paper's Table III economics — generation, compilation and
//! preparation cost per query — only pay off when a prepared plan (and its
//! instantiated kernel program) is reused across requests.  The cache key
//! must therefore identify "the same query" robustly against the
//! formatting noise real clients produce: case of keywords and
//! identifiers, and whitespace.  [`shape_key`] normalizes exactly those
//! (preserving string literals byte-for-byte, since `'A'` and `'a'` are
//! different queries), so two spellings of one query share a cache entry
//! while queries differing in any constant do not — cached plans stay
//! exact, including their literal-dependent cardinality estimates.
//!
//! [`shape_class`] goes one step further and masks literals with `?`.
//! That is deliberately *not* the cache key (two queries of one class can
//! deserve different plans); it is the observability label a server uses
//! to group cache statistics by query template.

/// Normalize a SQL string into its cache key: whitespace collapsed to
/// single spaces, everything outside single-quoted string literals folded
/// to lowercase, trailing semicolons and padding trimmed.  Literals are
/// preserved exactly (including `''` escapes), so the key never conflates
/// queries with different constants.
pub fn shape_key(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c == '\'' {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push('\'');
            // Copy the literal verbatim, honoring '' escapes.
            loop {
                match chars.next() {
                    Some('\'') => {
                        out.push('\'');
                        if chars.peek() == Some(&'\'') {
                            out.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                    Some(c) => out.push(c),
                    None => break, // unterminated literal: keep what we have
                }
            }
        } else if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for l in c.to_lowercase() {
                out.push(l);
            }
        }
    }
    while out.ends_with(';') {
        out.pop();
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out
}

/// The query's *shape class*: its [`shape_key`] with string and numeric
/// literals masked as `?`.  The class labels cache statistics by query
/// template, and — paired with the extracted constant vector from
/// [`shape_class_and_consts`] — keys the server's plan cache so
/// literal-varying repeats of one template share a compiled program.
pub fn shape_class(sql: &str) -> String {
    shape_class_and_consts(sql).0
}

/// Split a query into its shape class and the literal texts masked out of
/// it, in left-to-right order.  The pair is a lossless decomposition of
/// [`shape_key`]: two queries have equal `(class, consts)` exactly when
/// their shape keys are equal, so a cache keyed on the class with the
/// constant vector checked per entry distinguishes every query the old
/// literal-preserving key distinguished — while recognizing classmates
/// that differ only in constants (the VM's pooled-template rebind case).
pub fn shape_class_and_consts(sql: &str) -> (String, Vec<String>) {
    let key = shape_key(sql);
    let mut out = String::with_capacity(key.len());
    let mut consts = Vec::new();
    let mut chars = key.chars().peekable();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        if c == '\'' {
            // Swallow the literal (including '' escapes) and emit one ?.
            let mut lit = String::from("'");
            loop {
                match chars.next() {
                    Some('\'') => {
                        lit.push('\'');
                        if chars.peek() == Some(&'\'') {
                            lit.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                    Some(c) => lit.push(c),
                    None => break,
                }
            }
            consts.push(lit);
            out.push('?');
            prev = Some('?');
        } else if c.is_ascii_digit() && !prev.is_some_and(|p| p.is_alphanumeric() || p == '_') {
            // A numeric literal (not part of an identifier like `l_tax` or
            // `t1`): swallow digits, one decimal point and an exponent.
            let mut lit = String::new();
            lit.push(c);
            while chars
                .peek()
                .is_some_and(|&n| n.is_ascii_digit() || n == '.')
            {
                lit.push(chars.next().expect("peeked"));
            }
            consts.push(lit);
            out.push('?');
            prev = Some('?');
        } else {
            out.push(c);
            prev = Some(c);
        }
    }
    (out, consts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_and_whitespace_fold_into_one_key() {
        let a = shape_key("SELECT  k,\n\t v FROM r   WHERE k = 3;");
        let b = shape_key("select k, v from r where k = 3");
        assert_eq!(a, b);
        assert_eq!(a, "select k, v from r where k = 3");
    }

    #[test]
    fn string_literals_are_preserved_exactly() {
        let upper = shape_key("select * from r where tag = 'ABC'");
        let lower = shape_key("select * from r where tag = 'abc'");
        assert_ne!(upper, lower, "literal case must distinguish keys");
        assert!(upper.contains("'ABC'"));
        // Escaped quotes survive normalization.
        let esc = shape_key("SELECT 'It''s A' FROM r");
        assert!(esc.contains("'It''s A'"));
        assert!(esc.starts_with("select "));
    }

    #[test]
    fn different_constants_are_different_keys_but_one_class() {
        let a = shape_key("select v from r where k = 3");
        let b = shape_key("select v from r where k = 42");
        assert_ne!(a, b);
        assert_eq!(shape_class(&a), shape_class(&b));
        assert_eq!(shape_class(&a), "select v from r where k = ?");
    }

    #[test]
    fn class_and_consts_losslessly_split_the_key() {
        let (class, consts) =
            shape_class_and_consts("select v from r where k = 42 and tag = 'It''s A' and v < 2.5");
        assert_eq!(class, "select v from r where k = ? and tag = ? and v < ?");
        assert_eq!(consts, vec!["42", "'It''s A'", "2.5"]);
        // Same class, different constant vector: distinguishable, shareable.
        let (class2, consts2) =
            shape_class_and_consts("SELECT v FROM r WHERE k = 7 AND tag = 'x' AND v < 9.0;");
        assert_eq!(class, class2);
        assert_ne!(consts, consts2);
    }

    #[test]
    fn class_masks_strings_and_numbers_but_not_identifiers() {
        let class = shape_class(
            "select l_tax, sum(2.5 * l_qty) from lineitem where l_ship = 'AIR' and l_qty < 10",
        );
        assert_eq!(
            class,
            "select l_tax, sum(? * l_qty) from lineitem where l_ship = ? and l_qty < ?"
        );
    }
}
