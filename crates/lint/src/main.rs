//! `hique-lint`: walk the workspace, apply the source-level invariant
//! rules, reconcile findings against `lint-allow.toml`.
//!
//! ```bash
//! cargo run -p hique-lint            # from the workspace root
//! cargo run -p hique-lint -- --root /path/to/repo --allow custom-allow.toml
//! cargo run -p hique-lint -- --list  # print raw findings, ignore allowlist
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 usage/IO/allowlist-parse error.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hique_lint::{apply_allowlist, check_crate_root, parse_allowlist, scan_source, Finding};

/// Shim crates are exempt from every rule: they exist to mirror external
/// APIs verbatim (including, e.g., parking_lot's unsafe-free façade) and
/// are not engine code.
fn is_shim(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str() == Some("shims"))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("hique-lint: {msg}");
    ExitCode::from(2)
}

/// Collect every `.rs` file under `dir`, recursively, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut list_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return fail("--root requires a value"),
            },
            "--allow" => match it.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return fail("--allow requires a value"),
            },
            "--list" => list_only = true,
            "--help" | "-h" => {
                eprintln!("usage: hique-lint [--root DIR] [--allow FILE] [--list]");
                return ExitCode::from(2);
            }
            other => return fail(&format!("unknown flag {other}")),
        }
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));

    // The scan scope: `src/` of every crate under crates/ (minus shims)
    // plus the facade crate's own src/.  Integration tests and benches
    // live outside src/ and are deliberately out of scope.
    let crates_dir = root.join("crates");
    let mut scan_dirs = Vec::new();
    match fs::read_dir(&crates_dir) {
        Ok(entries) => {
            let mut dirs: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                if dir.is_dir() && !is_shim(&dir) && dir.join("src").is_dir() {
                    scan_dirs.push(dir.join("src"));
                }
            }
        }
        Err(e) => return fail(&format!("cannot read {}: {e}", crates_dir.display())),
    }
    if root.join("src").is_dir() {
        scan_dirs.push(root.join("src"));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut files_scanned = 0usize;
    for dir in &scan_dirs {
        let mut files = Vec::new();
        if let Err(e) = rust_files(dir, &mut files) {
            return fail(&format!("walking {}: {e}", dir.display()));
        }
        for file in files {
            let text = match fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => return fail(&format!("reading {}: {e}", file.display())),
            };
            let label = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            files_scanned += 1;
            findings.extend(scan_source(&label, &text));
            // Crate roots: lib.rs/main.rs directly under src/, and every
            // bin target root under src/bin/.
            let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let parent = file
                .parent()
                .and_then(|p| p.file_name())
                .and_then(|n| n.to_str());
            let is_root = (parent == Some("src") && (name == "lib.rs" || name == "main.rs"))
                || parent == Some("bin");
            if is_root {
                findings.extend(check_crate_root(&label, &text));
            }
        }
    }

    if list_only {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "hique-lint: {} findings over {files_scanned} files",
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let allow_text = match fs::read_to_string(&allow_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {}: {e}", allow_path.display())),
    };
    let entries = match parse_allowlist(&allow_text) {
        Ok(entries) => entries,
        Err(e) => return fail(&format!("{}: {e}", allow_path.display())),
    };
    let report = apply_allowlist(&findings, &entries);
    print!("{report}");
    println!(
        "hique-lint: scanned {files_scanned} files in {} trees",
        scan_dirs.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
