//! # hique-lint
//!
//! Source-level invariant checker for the HIQUE workspace: a handful of
//! rules the compiler and clippy cannot express, enforced per push in CI.
//! Std-only by design — it must build in seconds and never pull the engine
//! crates into its own dependency graph.
//!
//! Rules (each finding names the rule, file and line):
//!
//! * `unwrap-expect` — `.unwrap()` / `.expect(` in non-test library code.
//!   Panics are not typed errors; every tolerated site lives in the
//!   checked-in allowlist with a stated reason (usually a documented
//!   invariant the surrounding code maintains).  Binary drivers
//!   (`src/main.rs`, `src/bin/*.rs`) are exempt: for a bench or CLI entry
//!   point, panicking with a message *is* the process's error report.
//! * `wall-clock` — `Instant::now` / `SystemTime` in engine crates.  The
//!   engines are deterministic replay subjects; ambient time is only
//!   allowed where the allowlist says it is instrumentation (phase
//!   timings, spill pressure windows, cancellation deadlines).
//! * `condvar-wait` — unbounded `Condvar::wait`.  Every blocking wait in
//!   the workspace must carry a timeout so cancellation and shutdown can
//!   always make progress; there is no allowlist escape for this rule.
//! * `allow-attr` — `#[allow(...)]` without a justification comment on the
//!   same or the preceding line.  Suppressing a diagnostic is fine;
//!   suppressing it silently is not.
//! * `forbid-unsafe` — every non-shim crate root must carry
//!   `#![forbid(unsafe_code)]`.
//!
//! The allowlist (`lint-allow.toml` at the workspace root) is a sequence
//! of `[[allow]]` tables, each with `rule`, `path`, `max` (finding budget
//! for that file) and a mandatory non-empty `reason`.  Budgets ratchet:
//! a file exceeding its budget fails the gate; an entry whose file now has
//! zero findings is reported as stale so the list cannot rot.

#![forbid(unsafe_code)]

use std::fmt;

/// The rules this linter knows.  `name()` strings are what the allowlist
/// refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    UnwrapExpect,
    WallClock,
    CondvarWait,
    AllowAttr,
    ForbidUnsafe,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapExpect => "unwrap-expect",
            Rule::WallClock => "wall-clock",
            Rule::CondvarWait => "condvar-wait",
            Rule::AllowAttr => "allow-attr",
            Rule::ForbidUnsafe => "forbid-unsafe",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unwrap-expect" => Some(Rule::UnwrapExpect),
            "wall-clock" => Some(Rule::WallClock),
            "condvar-wait" => Some(Rule::CondvarWait),
            "allow-attr" => Some(Rule::AllowAttr),
            "forbid-unsafe" => Some(Rule::ForbidUnsafe),
            _ => None,
        }
    }

    /// Rules with no allowlist escape: findings always fail the gate.
    pub fn allowlistable(self) -> bool {
        !matches!(self, Rule::CondvarWait | Rule::ForbidUnsafe)
    }
}

/// One rule hit at one source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.excerpt.trim()
        )
    }
}

// The patterns are spelled via concat! so this crate's own source does not
// trip the rules it enforces when the linter scans the workspace.
const PAT_UNWRAP: &str = concat!(".unw", "rap()");
const PAT_EXPECT: &str = concat!(".exp", "ect(");
const PAT_INSTANT: &str = concat!("Instant::", "now");
const PAT_SYSTIME: &str = concat!("System", "Time");
const PAT_WAIT: &str = concat!(".wa", "it(");
const PAT_WAIT_TIMEOUT: &str = concat!("wait_", "timeout");
const PAT_ALLOW: &str = concat!("#[al", "low(");
const PAT_CFG_TEST: &str = concat!("#[cfg(", "test)]");
const PAT_FORBID_UNSAFE: &str = concat!("#![forbid(", "unsafe_code)]");

/// Crates whose `src/` trees are held to the `wall-clock` rule: the query
/// engines proper, where determinism is a replay/test contract.  Benches,
/// the server and the conformance harness legitimately read clocks.
pub const ENGINE_CRATES: &[&str] = &[
    "types", "storage", "sql", "plan", "par", "pipeline", "iter", "dsm", "core", "vm",
];

/// True when `path` (workspace-relative, forward slashes) belongs to an
/// engine crate's library tree.
pub fn is_engine_path(path: &str) -> bool {
    ENGINE_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// The part of a line that is code: everything before a `//` comment.
/// (Naive about `//` inside string literals — that only shrinks the match
/// region, so it can hide a finding in pathological code but never invent
/// one.)
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Scan one source file's text.  `path` is the workspace-relative label
/// used in findings and matched against the allowlist.  Lines inside
/// `#[cfg(test)]`-gated blocks are exempt from every rule: tests may
/// panic, tell time and suppress lints freely.
pub fn scan_source(path: &str, text: &str) -> Vec<Finding> {
    let engine = is_engine_path(path);
    // Binary entry points report errors by panicking with a message; the
    // unwrap-expect rule is about library code that owes callers a typed
    // error instead.
    let bin_driver = path.contains("/src/bin/") || path.ends_with("src/main.rs");
    let mut findings = Vec::new();
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut test_armed = false;
    let mut prev_code_line = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        if in_test {
            for ch in raw.chars() {
                match ch {
                    '{' => {
                        test_depth += 1;
                        test_armed = true;
                    }
                    '}' => test_depth -= 1,
                    _ => {}
                }
            }
            if test_armed && test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if trimmed.starts_with(PAT_CFG_TEST) {
            in_test = true;
            test_depth = 0;
            test_armed = false;
            continue;
        }
        if trimmed.starts_with("//") {
            prev_code_line = raw.to_string();
            continue;
        }
        let code = code_part(raw);

        if !bin_driver && (code.contains(PAT_UNWRAP) || code.contains(PAT_EXPECT)) {
            findings.push(Finding {
                rule: Rule::UnwrapExpect,
                path: path.to_string(),
                line: line_no,
                excerpt: raw.to_string(),
            });
        }
        if engine && (code.contains(PAT_INSTANT) || code.contains(PAT_SYSTIME)) {
            findings.push(Finding {
                rule: Rule::WallClock,
                path: path.to_string(),
                line: line_no,
                excerpt: raw.to_string(),
            });
        }
        if code.contains(PAT_WAIT) && !code.contains(PAT_WAIT_TIMEOUT) {
            findings.push(Finding {
                rule: Rule::CondvarWait,
                path: path.to_string(),
                line: line_no,
                excerpt: raw.to_string(),
            });
        }
        if code.trim_start().starts_with(PAT_ALLOW) {
            // Only a plain `//` comment counts as justification: `///` doc
            // comments document the item, not the suppression.
            let justified_inline = raw.contains("//");
            let prev = prev_code_line.trim_start();
            let justified_above =
                prev.starts_with("//") && !prev.starts_with("///") && !prev.starts_with("//!");
            if !justified_inline && !justified_above {
                findings.push(Finding {
                    rule: Rule::AllowAttr,
                    path: path.to_string(),
                    line: line_no,
                    excerpt: raw.to_string(),
                });
            }
        }
        prev_code_line = raw.to_string();
    }
    findings
}

/// Check a crate root (`src/lib.rs` or `src/main.rs`) for the mandatory
/// `#![forbid(unsafe_code)]`.
pub fn check_crate_root(path: &str, text: &str) -> Option<Finding> {
    if text.lines().any(|l| l.trim() == PAT_FORBID_UNSAFE) {
        None
    } else {
        Some(Finding {
            rule: Rule::ForbidUnsafe,
            path: path.to_string(),
            line: 1,
            excerpt: format!("crate root is missing {PAT_FORBID_UNSAFE}"),
        })
    }
}

/// One `[[allow]]` table from `lint-allow.toml`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub max: usize,
    pub reason: String,
}

/// Parse the allowlist.  The accepted grammar is the TOML subset the file
/// actually uses: `#` comments, `[[allow]]` table headers and
/// `key = value` pairs with quoted strings or bare integers.  Anything
/// else is a hard error — a malformed allowlist must fail the gate, not
/// silently allow everything.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    struct Partial {
        rule: Option<Rule>,
        path: Option<String>,
        max: Option<usize>,
        reason: Option<String>,
        header_line: usize,
    }
    fn finish(p: Partial) -> Result<AllowEntry, String> {
        let at = format!("[[allow]] at line {}", p.header_line);
        let rule = p.rule.ok_or(format!("{at}: missing rule"))?;
        if !rule.allowlistable() {
            return Err(format!(
                "{at}: rule '{}' cannot be allowlisted",
                rule.name()
            ));
        }
        let path = p.path.ok_or(format!("{at}: missing path"))?;
        let max = p.max.ok_or(format!("{at}: missing max"))?;
        if max == 0 {
            return Err(format!("{at}: max must be >= 1 (delete the entry instead)"));
        }
        let reason = p.reason.ok_or(format!("{at}: missing reason"))?;
        if reason.trim().is_empty() {
            return Err(format!("{at}: reason must not be empty"));
        }
        Ok(AllowEntry {
            rule,
            path,
            max,
            reason,
        })
    }

    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(finish(p)?);
            }
            current = Some(Partial {
                rule: None,
                path: None,
                max: None,
                reason: None,
                header_line: line_no,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {line_no}: expected `key = value`, got: {line}"
            ));
        };
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "line {line_no}: `{}` outside any [[allow]]",
                key.trim()
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let unquote = |v: &str| -> Result<String, String> {
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(format!("line {line_no}: {key} must be a quoted string"))?;
            Ok(v.to_string())
        };
        match key {
            "rule" => {
                let name = unquote(value)?;
                p.rule = Some(
                    Rule::from_name(&name)
                        .ok_or(format!("line {line_no}: unknown rule '{name}'"))?,
                );
            }
            "path" => p.path = Some(unquote(value)?),
            "max" => {
                p.max = Some(
                    value
                        .parse()
                        .map_err(|e| format!("line {line_no}: bad max: {e}"))?,
                )
            }
            "reason" => p.reason = Some(unquote(value)?),
            other => return Err(format!("line {line_no}: unknown key '{other}'")),
        }
    }
    if let Some(p) = current.take() {
        entries.push(finish(p)?);
    }
    Ok(entries)
}

/// The gate's verdict after findings meet the allowlist.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist budget.  Any entry fails.
    pub violations: Vec<String>,
    /// Findings absorbed by allowlist budgets.
    pub suppressed: usize,
    /// Allowlist entries whose file no longer has findings — prune them.
    /// Reported but non-fatal, so a cleanup commit cannot be blocked by
    /// its own success.
    pub stale: Vec<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "error: {v}")?;
        }
        for s in &self.stale {
            writeln!(f, "warning: stale allowlist entry: {s}")?;
        }
        writeln!(
            f,
            "hique-lint: {} violations, {} suppressed by allowlist, {} stale entries",
            self.violations.len(),
            self.suppressed,
            self.stale.len()
        )
    }
}

/// Apply the allowlist: per (rule, path) budgets, ratcheting both ways.
pub fn apply_allowlist(findings: &[Finding], entries: &[AllowEntry]) -> Report {
    let mut report = Report::default();
    let mut used = vec![0usize; entries.len()];
    for finding in findings {
        let slot = entries
            .iter()
            .position(|e| e.rule == finding.rule && e.path == finding.path);
        match slot {
            Some(i) if used[i] < entries[i].max => {
                used[i] += 1;
                report.suppressed += 1;
            }
            Some(i) => report.violations.push(format!(
                "{finding} (allowlist budget for {} in {} is {}, exceeded)",
                entries[i].rule.name(),
                entries[i].path,
                entries[i].max
            )),
            None => report.violations.push(finding.to_string()),
        }
    }
    for (i, entry) in entries.iter().enumerate() {
        if used[i] == 0 {
            report.stale.push(format!(
                "{} for {} (max {}) matched nothing",
                entry.rule.name(),
                entry.path,
                entry.max
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Build pattern-bearing source at runtime so this file never contains
    // the literal patterns outside the concat! definitions.
    fn line_with(pat: &str) -> String {
        format!("    let x = y{pat});\n")
    }

    #[test]
    fn unwrap_and_expect_are_flagged_in_library_code() {
        let src = format!(
            "fn f() {{\n{}{}}}\n",
            line_with(&PAT_UNWRAP.replace("()", "(")),
            line_with(PAT_EXPECT)
        );
        let findings = scan_source("crates/sql/src/parse.rs", &src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == Rule::UnwrapExpect));
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn binary_drivers_are_exempt_from_unwrap_expect_only() {
        let src = format!(
            "fn main() {{\n{}    let t = {}();\n}}\n",
            line_with(PAT_EXPECT),
            PAT_INSTANT
        );
        let findings = scan_source("crates/vm/src/bin/tool.rs", &src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::WallClock);
        assert!(scan_source("crates/server/src/main.rs", &line_with(PAT_EXPECT)).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = format!(
            "fn f() {{}}\n{}\nmod tests {{\n    fn g() {{\n{}    }}\n}}\nfn h() {{\n{}}}\n",
            PAT_CFG_TEST,
            line_with(PAT_EXPECT),
            line_with(PAT_EXPECT)
        );
        let findings = scan_source("crates/sql/src/parse.rs", &src);
        assert_eq!(
            findings.len(),
            1,
            "only the post-tests finding: {findings:?}"
        );
        assert_eq!(findings[0].line, 9);
    }

    #[test]
    fn comments_do_not_count() {
        let src = format!("// call {} here\nfn f() {{}}\n", PAT_UNWRAP);
        assert!(scan_source("crates/sql/src/parse.rs", &src).is_empty());
    }

    #[test]
    fn wall_clock_is_engine_crates_only() {
        let src = format!("fn f() {{\n    let t = {}();\n}}\n", PAT_INSTANT);
        assert_eq!(scan_source("crates/vm/src/exec.rs", &src).len(), 1);
        assert!(scan_source("crates/bench/src/lib.rs", &src).is_empty());
        assert!(scan_source("crates/server/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn unbounded_condvar_wait_is_flagged_but_timeouts_are_not() {
        let bounded = format!("    let r = cv.{}(g, d);\n", PAT_WAIT_TIMEOUT);
        let unbounded = format!("    let g = cv{}g);\n", PAT_WAIT);
        let src = format!("fn f() {{\n{bounded}{unbounded}}}\n");
        let findings = scan_source("crates/par/src/pool.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::CondvarWait);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn allow_attrs_need_a_justification_comment() {
        let bare = format!("{}clippy::foo)]\nfn f() {{}}\n", PAT_ALLOW);
        let findings = scan_source("crates/plan/src/a.rs", &bare);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::AllowAttr);

        let above = format!(
            "// the planner owns this\n{}clippy::foo)]\nfn f() {{}}\n",
            PAT_ALLOW
        );
        assert!(scan_source("crates/plan/src/a.rs", &above).is_empty());

        let inline = format!(
            "{}clippy::foo)] // measured, fine\nfn f() {{}}\n",
            PAT_ALLOW
        );
        assert!(scan_source("crates/plan/src/a.rs", &inline).is_empty());

        // Doc comments document the item, not the suppression.
        let doc_only = format!(
            "/// Frobnicates.\n{}clippy::foo)]\nfn f() {{}}\n",
            PAT_ALLOW
        );
        assert_eq!(scan_source("crates/plan/src/a.rs", &doc_only).len(), 1);
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        assert!(check_crate_root("crates/x/src/lib.rs", "pub fn f() {}\n").is_some());
        let good = format!("//! docs\n{PAT_FORBID_UNSAFE}\npub fn f() {{}}\n");
        assert!(check_crate_root("crates/x/src/lib.rs", &good).is_none());
    }

    fn entry(rule: Rule, path: &str, max: usize) -> AllowEntry {
        AllowEntry {
            rule,
            path: path.to_string(),
            max,
            reason: "test".to_string(),
        }
    }

    fn finding(rule: Rule, path: &str, line: usize) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            excerpt: "x".to_string(),
        }
    }

    #[test]
    fn allowlist_budgets_ratchet_both_ways() {
        let entries = vec![
            entry(Rule::UnwrapExpect, "crates/a/src/x.rs", 1),
            entry(Rule::UnwrapExpect, "crates/a/src/y.rs", 2),
        ];
        let findings = vec![
            finding(Rule::UnwrapExpect, "crates/a/src/x.rs", 1),
            finding(Rule::UnwrapExpect, "crates/a/src/x.rs", 9), // over budget
            finding(Rule::UnwrapExpect, "crates/a/src/z.rs", 3), // unlisted
        ];
        let report = apply_allowlist(&findings, &entries);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.stale.len(), 1, "y.rs entry matched nothing");
        assert!(!report.is_clean());
    }

    #[test]
    fn allowlist_parser_round_trips_the_real_grammar() {
        let text = r#"
# workspace allowlist
[[allow]]
rule = "unwrap-expect"
path = "crates/a/src/x.rs"
max = 3
reason = "invariant documented at the call sites"

[[allow]]
rule = "wall-clock"
path = "crates/vm/src/exec.rs"
max = 5
reason = "phase timing instrumentation"
"#;
        let entries = parse_allowlist(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, Rule::UnwrapExpect);
        assert_eq!(entries[0].max, 3);
        assert_eq!(entries[1].rule, Rule::WallClock);
    }

    #[test]
    fn allowlist_parser_rejects_rot() {
        // Missing reason.
        let text = "[[allow]]\nrule = \"unwrap-expect\"\npath = \"a\"\nmax = 1\n";
        assert!(parse_allowlist(text).is_err());
        // Zero budget.
        let text = "[[allow]]\nrule = \"unwrap-expect\"\npath = \"a\"\nmax = 0\nreason = \"x\"\n";
        assert!(parse_allowlist(text).is_err());
        // Unknown rule.
        let text = "[[allow]]\nrule = \"nope\"\npath = \"a\"\nmax = 1\nreason = \"x\"\n";
        assert!(parse_allowlist(text).is_err());
        // Non-allowlistable rule.
        let text = "[[allow]]\nrule = \"condvar-wait\"\npath = \"a\"\nmax = 1\nreason = \"x\"\n";
        assert!(parse_allowlist(text).is_err());
        // Key outside a table.
        assert!(parse_allowlist("rule = \"unwrap-expect\"\n").is_err());
    }
}
