//! # hique-dsm
//!
//! A **column-at-a-time (DSM) execution engine** in the architectural style
//! of MonetDB, the paper's main-memory, architecture-conscious baseline
//! (§III, §VI-C).  Its defining properties, reproduced here:
//!
//! * tables are vertically decomposed into typed column arrays
//!   ([`column::ColumnData`]), so an operator touches only the columns it
//!   needs (the advantage the paper credits MonetDB with on wide TPC-H
//!   tuples);
//! * operators are array primitives executed one column at a time, with
//!   every intermediate result **fully materialized** (selection vectors,
//!   join index pairs, gathered columns), which is the property the paper
//!   contrasts with holistic evaluation's cache-resident pipelining.
//!
//! The engine executes the same physical plans as the other two engines and
//! returns identical results; only the execution model differs.

#![forbid(unsafe_code)]

pub mod column;
pub mod exec;

pub use column::{ColumnData, ColumnStore, DsmDatabase};
pub use exec::{execute_plan, execute_plan_cancellable};
