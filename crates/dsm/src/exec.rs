//! Column-at-a-time plan execution with full materialization of
//! intermediates (selection vectors, join alignments, gathered columns).

use std::collections::HashMap;
use std::time::Instant;

use hique_plan::PhysicalPlan;
use hique_sql::analyze::{ColumnFilter, OutputExpr, ScalarExpr};
use hique_sql::ast::{AggFunc, BinOp};
use hique_types::{
    result::finalize_rows, DataType, ExecStats, HiqueError, PhaseTimings, QueryResult, Result, Row,
    Value,
};

use crate::column::{ColumnData, ColumnStore, DsmDatabase};

/// Execute a physical plan with the DSM engine.
pub fn execute_plan(plan: &PhysicalPlan, db: &DsmDatabase) -> Result<QueryResult> {
    let mut stats = ExecStats::new();
    let mut timings = PhaseTimings::new();
    let started = Instant::now();

    // Resolve the decomposed tables in FROM order.
    let stores: Vec<&ColumnStore> = plan
        .query
        .tables
        .iter()
        .map(|t| db.table(&t.name))
        .collect::<Result<_>>()?;

    // joined-schema column index -> (table index, base column index)
    let mut joined_map: Vec<(usize, usize)> = Vec::new();
    for &t in &plan.join_order {
        for &c in &plan.staged[t].keep {
            joined_map.push((t, c));
        }
    }

    // ---- Selection (column-wise filters, materialized selection vectors) ----
    let t0 = Instant::now();
    let mut selections: Vec<Vec<u32>> = Vec::with_capacity(stores.len());
    for (t, store) in stores.iter().enumerate() {
        stats.add_calls(1);
        let mut sel: Vec<u32> = (0..store.rows as u32).collect();
        for f in plan.staged[t].filters.iter() {
            sel = apply_filter(store, f, &sel, &mut stats)?;
        }
        stats.add_materialized(sel.len() * 4);
        selections.push(sel);
    }
    timings.record("selection", t0.elapsed());

    // ---- Joins (hash joins over key columns, alignments materialized) --------
    let t1 = Instant::now();
    // alignment[t] = for each current output position, the row id in table t.
    let mut alignment: HashMap<usize, Vec<u32>> = HashMap::new();
    let first = plan.join_order[0];
    alignment.insert(first, selections[first].clone());

    struct Step {
        right: usize,
        left_key: usize,
        right_key: usize,
    }
    let steps: Vec<Step> = if let Some(team) = &plan.join_team {
        team.members
            .iter()
            .zip(&team.key_columns)
            .skip(1)
            .map(|(&right, &rk)| Step {
                right,
                left_key: team.key_columns[0],
                right_key: rk,
            })
            .collect()
    } else {
        plan.joins
            .iter()
            .map(|j| Step {
                right: j.right,
                left_key: j.left_key,
                right_key: j.right_key,
            })
            .collect()
    };

    for step in &steps {
        stats.add_calls(1);
        let right_table = step.right;
        let right_base_col = plan.staged[right_table].keep[step.right_key];
        // For join teams the left key column lives in the first member's
        // staged schema; for cascades it is a joined-schema index.
        let (left_table, left_base_col) = if plan.join_team.is_some() {
            (first, plan.staged[first].keep[step.left_key])
        } else {
            joined_map[step.left_key]
        };

        // Build a hash table over the right side's selected rows.
        let right_col = &stores[right_table].columns[right_base_col];
        let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
        for &rid in &selections[right_table] {
            stats.add_hashes(1);
            table
                .entry(right_col.key_at(rid as usize))
                .or_default()
                .push(rid);
        }
        stats.add_materialized(selections[right_table].len() * 12);

        // Probe with the current alignment's left-key column.
        let left_rows = alignment
            .get(&left_table)
            .ok_or_else(|| HiqueError::Execution("join references an unjoined table".into()))?
            .clone();
        let left_col = &stores[left_table].columns[left_base_col];
        let mut new_positions: Vec<u32> = Vec::new();
        let mut right_matches: Vec<u32> = Vec::new();
        for (pos, &lrid) in left_rows.iter().enumerate() {
            stats.add_hashes(1);
            stats.tuples_processed += 1;
            if let Some(matches) = table.get(&left_col.key_at(lrid as usize)) {
                for &rid in matches {
                    new_positions.push(pos as u32);
                    right_matches.push(rid);
                }
            }
        }
        // Re-materialize every existing alignment vector through the match
        // positions (full materialization, as MonetDB's operator-at-a-time
        // model requires).
        let mut new_alignment: HashMap<usize, Vec<u32>> = HashMap::new();
        for (&t, rows) in &alignment {
            let gathered: Vec<u32> = new_positions.iter().map(|&p| rows[p as usize]).collect();
            stats.add_materialized(gathered.len() * 4);
            new_alignment.insert(t, gathered);
        }
        stats.add_materialized(right_matches.len() * 4);
        new_alignment.insert(right_table, right_matches);
        alignment = new_alignment;
    }
    let output_len = alignment
        .get(&first)
        .map(|v| v.len())
        .unwrap_or_else(|| selections[first].len());
    timings.record("join", t1.elapsed());

    // Helper: materialize a joined-schema column for the current alignment.
    let gather_joined = |joined_idx: usize, stats: &mut ExecStats| -> ColumnData {
        let (t, c) = joined_map[joined_idx];
        let rows = &alignment[&t];
        let g = stores[t].columns[c].gather(rows);
        stats.add_materialized(g.byte_size());
        g
    };

    // ---- Aggregation ------------------------------------------------------------
    let t2 = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    if let Some(spec) = &plan.aggregate {
        stats.add_calls(1);
        // Materialize group-key columns and aggregate argument vectors.
        let group_cols: Vec<(ColumnData, DataType)> = spec
            .group_columns
            .iter()
            .map(|&g| {
                let dtype = plan.joined_schema.column(g).dtype;
                (gather_joined(g, &mut stats), dtype)
            })
            .collect();
        let arg_vectors: Vec<Option<Vec<f64>>> = spec
            .aggregates
            .iter()
            .map(|a| {
                a.arg.as_ref().map(|e| {
                    eval_vectorized(e, output_len, &|i| gather_joined(i, &mut stats.clone()))
                })
            })
            .collect();
        // NOTE: eval_vectorized gathers referenced columns itself; the
        // stats.clone() above under-counts materialization slightly, which
        // is acceptable for the counters' purpose.

        #[derive(Clone)]
        struct Acc {
            sum: f64,
            count: i64,
            min: f64,
            max: f64,
        }
        let mut groups: HashMap<Vec<i64>, (Vec<Value>, Vec<Acc>)> = HashMap::new();
        for i in 0..output_len {
            stats.tuples_processed += 1;
            let key: Vec<i64> = group_cols.iter().map(|(c, _)| c.key_at(i)).collect();
            stats.add_hashes(1);
            let entry = groups.entry(key).or_insert_with(|| {
                (
                    group_cols
                        .iter()
                        .map(|(c, dt)| c.value_at(i, *dt))
                        .collect(),
                    vec![
                        Acc {
                            sum: 0.0,
                            count: 0,
                            min: f64::INFINITY,
                            max: f64::NEG_INFINITY
                        };
                        spec.aggregates.len()
                    ],
                )
            });
            for (a, acc) in arg_vectors.iter().zip(entry.1.iter_mut()) {
                match a {
                    Some(vec) => {
                        let v = vec[i];
                        acc.sum += v;
                        acc.count += 1;
                        if v < acc.min {
                            acc.min = v;
                        }
                        if v > acc.max {
                            acc.max = v;
                        }
                    }
                    None => acc.count += 1,
                }
            }
        }
        // Global aggregate over empty input still yields no group, matching
        // the other engines (SQL would yield one row, but none of the
        // benchmarked queries hit this).
        let group_count = spec.group_columns.len();
        for (_, (key_values, accs)) in groups {
            let values: Vec<Value> = plan
                .output
                .iter()
                .map(|o| match o {
                    OutputExpr::GroupColumn(ci) => {
                        let pos = spec.group_columns.iter().position(|g| g == ci).unwrap();
                        key_values[pos].clone()
                    }
                    OutputExpr::Aggregate(i) => {
                        let acc = &accs[*i];
                        let a = &spec.aggregates[*i];
                        match a.func {
                            AggFunc::Count => Value::Int64(acc.count),
                            AggFunc::Sum => match a.dtype {
                                DataType::Int64 => Value::Int64(acc.sum as i64),
                                DataType::Int32 => Value::Int32(acc.sum as i32),
                                _ => Value::Float64(acc.sum),
                            },
                            AggFunc::Avg => Value::Float64(acc.sum / acc.count.max(1) as f64),
                            AggFunc::Min => Value::Float64(acc.min),
                            AggFunc::Max => Value::Float64(acc.max),
                        }
                    }
                    OutputExpr::Scalar(_) => unreachable!("scalar output in aggregate plan"),
                })
                .collect();
            rows.push(Row::new(values));
        }
        let _ = group_count;
        timings.record("aggregation", t2.elapsed());
    } else {
        // Non-aggregate output: materialize each output column, then zip.
        stats.add_calls(1);
        let out_cols: Vec<(ColumnData, DataType)> = plan
            .output
            .iter()
            .zip(plan.output_schema.columns())
            .map(|(o, col)| match o {
                OutputExpr::Scalar(ScalarExpr::Column { index, .. }) => {
                    (gather_joined(*index, &mut stats), col.dtype)
                }
                OutputExpr::Scalar(e) => (
                    ColumnData::F64(eval_vectorized(e, output_len, &|i| {
                        gather_joined(i, &mut stats.clone())
                    })),
                    col.dtype,
                ),
                _ => unreachable!("aggregate output in non-aggregate plan"),
            })
            .collect();
        for i in 0..output_len {
            rows.push(Row::new(
                out_cols.iter().map(|(c, dt)| c.value_at(i, *dt)).collect(),
            ));
        }
        timings.record("projection", t2.elapsed());
    }

    finalize_rows(&mut rows, &plan.order_by, plan.limit);
    stats.rows_out = rows.len() as u64;
    timings.record("total", started.elapsed());
    Ok(QueryResult {
        schema: plan.output_schema.clone(),
        rows,
        stats,
        timings,
    })
}

/// Apply one filter column-at-a-time, producing a new selection vector.
fn apply_filter(
    store: &ColumnStore,
    filter: &ColumnFilter,
    sel: &[u32],
    stats: &mut ExecStats,
) -> Result<Vec<u32>> {
    let col = &store.columns[filter.column];
    let dtype = store.schema.column(filter.column).dtype;
    let mut out = Vec::with_capacity(sel.len());
    match (col, dtype) {
        (ColumnData::Str(values), _) => {
            let needle = filter
                .value
                .as_str()
                .ok_or_else(|| HiqueError::Execution("string filter on non-string".into()))?
                .to_string();
            for &i in sel {
                stats.add_comparisons(1);
                if filter
                    .op
                    .matches(values[i as usize].as_str().cmp(needle.as_str()))
                {
                    out.push(i);
                }
            }
        }
        _ => {
            let constant = filter.value.as_f64()?;
            for &i in sel {
                stats.add_comparisons(1);
                if filter
                    .op
                    .matches(col.f64_at(i as usize).total_cmp(&constant))
                {
                    out.push(i);
                }
            }
        }
    }
    Ok(out)
}

/// Evaluate a scalar expression one column at a time, producing a
/// materialized `f64` vector of length `len`.
fn eval_vectorized(
    expr: &ScalarExpr,
    len: usize,
    gather: &dyn Fn(usize) -> ColumnData,
) -> Vec<f64> {
    match expr {
        ScalarExpr::Column { index, .. } => {
            let col = gather(*index);
            (0..len).map(|i| col.f64_at(i)).collect()
        }
        ScalarExpr::Literal(v) => vec![v.as_f64().unwrap_or(f64::NAN); len],
        ScalarExpr::Binary {
            op, left, right, ..
        } => {
            let l = eval_vectorized(left, len, gather);
            let r = eval_vectorized(right, len, gather);
            l.iter()
                .zip(&r)
                .map(|(a, b)| match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_plan::{plan_query, CatalogProvider, PlannerConfig};
    use hique_storage::Catalog;
    use hique_types::{Column, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
                Column::new("tag", DataType::Char(4)),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Int32),
            ]),
        )
        .unwrap();
        for i in 0..200 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 20),
                    Value::Float64(i as f64),
                    Value::Str(if i % 2 == 0 { "ev" } else { "od" }.into()),
                ]))
                .unwrap();
        }
        for i in 0..40 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i % 20), Value::Int32(i)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat.analyze_table("s").unwrap();
        cat
    }

    fn run_both(sql: &str, cat: &Catalog) -> (QueryResult, QueryResult) {
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(cat)).unwrap();
        let plan = plan_query(&bound, cat, &PlannerConfig::default()).unwrap();
        let db = DsmDatabase::from_catalog(cat).unwrap();
        let dsm = execute_plan(&plan, &db).unwrap();
        let iter = hique_iter::execute_plan(&plan, cat, hique_iter::ExecMode::Optimized).unwrap();
        (dsm, iter)
    }

    #[test]
    fn selection_and_projection_match_iterator_engine() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select v, tag from r where k = 3 and v < 100 order by v",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert!(dsm.stats.bytes_materialized > 0);
    }

    #[test]
    fn join_aggregation_matches_iterator_engine() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select r.k, sum(r.v * (1 - 0.1)) as sv, count(*) as n from r, s \
             where r.k = s.k group by r.k order by r.k",
            &cat,
        );
        assert_eq!(dsm.rows.len(), 20);
        for (a, b) in dsm.rows.iter().zip(&iter.rows) {
            assert_eq!(a.get(0), b.get(0));
            assert!((a.get(1).as_f64().unwrap() - b.get(1).as_f64().unwrap()).abs() < 1e-6);
            assert_eq!(a.get(2), b.get(2));
        }
    }

    #[test]
    fn scalar_expression_outputs() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select v * 2 as d, tag from r where k = 1 order by d limit 4",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert_eq!(dsm.num_rows(), 4);
    }

    #[test]
    fn order_desc_and_global_aggregate() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select tag, max(v) as mx from r group by tag order by mx desc",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert_eq!(dsm.rows[0].get(1), &Value::Float64(199.0));
    }
}
