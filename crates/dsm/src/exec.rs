//! Column-at-a-time plan execution with full materialization of
//! intermediates (selection vectors, join alignments, gathered columns).
//!
//! Two pipeline-substrate properties extend to this engine:
//!
//! * **Partition parallelism** — selection vectors and join probes divide
//!   into contiguous chunks across the plan's worker pool; per-chunk outputs
//!   concatenate in chunk order, so `threads = 1 ≡ threads = N` bit-exactly.
//! * **Pool-backed intermediates** — under a memory budget on a paged
//!   source catalog, alignment vectors above the spill threshold are written
//!   through the buffer pool between join steps (the operator-at-a-time
//!   model's "BAT on disk") and read back through pin guards when the next
//!   operator consumes them.  The spill decision is size-only, so results
//!   are identical for every budget and thread count.

use std::borrow::Cow;
use std::collections::HashMap;
use std::time::Instant;

use hique_par::{chunk_ranges, ScopedPool};
use hique_pipeline::SpillContext;
use hique_plan::PhysicalPlan;
use hique_sql::analyze::{ColumnFilter, OutputExpr, ScalarExpr};
use hique_sql::ast::{AggFunc, BinOp};
use hique_storage::SpillHandle;
use hique_types::{
    result::finalize_rows, CancelToken, DataType, ExecStats, HiqueError, PhaseTimings, QueryResult,
    Result, Row, Value,
};

use crate::column::{ColumnData, ColumnStore, DsmDatabase};

/// A `u32` intermediate vector (selection or alignment) that is either
/// memory-resident or spilled through the buffer pool.
enum U32Slot {
    Mem(Vec<u32>),
    Spilled(SpillHandle),
}

impl U32Slot {
    /// Wrap a vector, spilling it when a context is active and the vector
    /// exceeds the size-only threshold.
    fn stage(v: Vec<u32>, ctx: Option<&SpillContext>) -> Result<U32Slot> {
        match ctx {
            Some(ctx) if ctx.should_spill(v.len() * 4) => {
                let mut buf = Vec::with_capacity(v.len() * 4);
                for x in &v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                Ok(U32Slot::Spilled(ctx.spill(&buf, 4)?))
            }
            _ => Ok(U32Slot::Mem(v)),
        }
    }

    /// Number of entries.
    fn len(&self) -> usize {
        match self {
            U32Slot::Mem(v) => v.len(),
            U32Slot::Spilled(h) => h.records,
        }
    }

    /// Materialize the vector (alignment consumers gather by random index,
    /// so a spilled slot reads its pages back through pin guards here).
    /// Memory-resident slots hand out a borrow — the common unspilled path
    /// never copies a vector just to read it.
    fn load(&self, ctx: Option<&SpillContext>) -> Result<Cow<'_, [u32]>> {
        match self {
            U32Slot::Mem(v) => Ok(Cow::Borrowed(v)),
            U32Slot::Spilled(h) => {
                let ctx = ctx.ok_or_else(|| {
                    HiqueError::Execution(
                        "spilled alignment vector loaded without a spill context".into(),
                    )
                })?;
                let _resident = ctx.meter().track(h.pages);
                let mut out = Vec::with_capacity(h.records);
                for i in 0..h.pages {
                    ctx.cancel().check()?;
                    let page = ctx.temp().page_guard(h, i)?;
                    for rec in page.data().chunks_exact(4) {
                        out.push(u32::from_le_bytes(rec.try_into().expect("4-byte record")));
                    }
                }
                Ok(Cow::Owned(out))
            }
        }
    }
}

/// Execute a physical plan with the DSM engine.
pub fn execute_plan(plan: &PhysicalPlan, db: &DsmDatabase) -> Result<QueryResult> {
    execute_plan_cancellable(plan, db, CancelToken::disabled())
}

/// [`execute_plan`] under a cancellation token, polled between column
/// operators (filter applications, join steps, gathers) and at every
/// spilled-vector page pull.
pub fn execute_plan_cancellable(
    plan: &PhysicalPlan,
    db: &DsmDatabase,
    cancel: CancelToken,
) -> Result<QueryResult> {
    let mut stats = ExecStats::new();
    let mut timings = PhaseTimings::new();
    let started = Instant::now();
    let pool = ScopedPool::new(plan.threads);
    let spill_ctx: Option<SpillContext> = match (plan.memory_budget_pages, db.temp()) {
        (pages, Some(temp)) if pages > 0 => Some(SpillContext::acquire_cancellable(
            temp,
            pages,
            cancel.clone(),
        )?),
        _ => None,
    };
    let spill = spill_ctx.as_ref();
    let io_base = db.pool_stats();
    let faults_base = db
        .pool()
        .and_then(|p| p.fault_plan())
        .map(|plan| plan.injected())
        .unwrap_or(0);
    // Per-execution residency window: peak_resident_pages reports this
    // run's high-water, not the pool's lifetime maximum — and concurrent
    // executions each hold their own window.
    let peak_window = db.pool().map(|p| p.begin_peak_window());

    // Resolve the decomposed tables in FROM order.
    let stores: Vec<&ColumnStore> = plan
        .query
        .tables
        .iter()
        .map(|t| db.table(&t.name))
        .collect::<Result<_>>()?;

    // joined-schema column index -> (table index, base column index)
    let mut joined_map: Vec<(usize, usize)> = Vec::new();
    for &t in &plan.join_order {
        for &c in &plan.staged[t].keep {
            joined_map.push((t, c));
        }
    }

    // ---- Selection (column-wise filters, materialized selection vectors) ----
    let t0 = Instant::now();
    let mut selections: Vec<Vec<u32>> = Vec::with_capacity(stores.len());
    for (t, store) in stores.iter().enumerate() {
        stats.add_calls(1);
        cancel.check()?;
        let mut sel: Vec<u32> = (0..store.rows as u32).collect();
        for f in plan.staged[t].filters.iter() {
            cancel.check()?;
            sel = apply_filter(store, f, &sel, &pool, &mut stats)?;
        }
        stats.add_materialized(sel.len() * 4);
        selections.push(sel);
    }
    timings.record("selection", t0.elapsed());

    // ---- Joins (hash joins over key columns, alignments materialized) --------
    let t1 = Instant::now();
    // alignment[t] = for each current output position, the row id in table t
    // — staged through the pool between steps under a memory budget.
    let mut alignment: HashMap<usize, U32Slot> = HashMap::new();
    let first = plan.join_order[0];
    alignment.insert(first, U32Slot::stage(selections[first].clone(), spill)?);

    struct Step {
        right: usize,
        left_key: usize,
        right_key: usize,
    }
    let steps: Vec<Step> = if let Some(team) = &plan.join_team {
        team.members
            .iter()
            .zip(&team.key_columns)
            .skip(1)
            .map(|(&right, &rk)| Step {
                right,
                left_key: team.key_columns[0],
                right_key: rk,
            })
            .collect()
    } else {
        plan.joins
            .iter()
            .map(|j| Step {
                right: j.right,
                left_key: j.left_key,
                right_key: j.right_key,
            })
            .collect()
    };

    for step in &steps {
        stats.add_calls(1);
        cancel.check()?;
        let right_table = step.right;
        let right_base_col = plan.staged[right_table].keep[step.right_key];
        // For join teams the left key column lives in the first member's
        // staged schema; for cascades it is a joined-schema index.
        let (left_table, left_base_col) = if plan.join_team.is_some() {
            (first, plan.staged[first].keep[step.left_key])
        } else {
            joined_map[step.left_key]
        };

        // Build a hash table over the right side's selected rows.
        let right_col = &stores[right_table].columns[right_base_col];
        let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
        for &rid in &selections[right_table] {
            stats.add_hashes(1);
            table
                .entry(right_col.key_at(rid as usize))
                .or_default()
                .push(rid);
        }
        stats.add_materialized(selections[right_table].len() * 12);

        // Probe with the current alignment's left-key column, chunk-parallel
        // with chunk-order concatenation (= the serial probe order).
        let left_rows = alignment
            .get(&left_table)
            .ok_or_else(|| HiqueError::Execution("join references an unjoined table".into()))?
            .load(spill)?;
        let left_col = &stores[left_table].columns[left_base_col];
        stats.add_hashes(left_rows.len() as u64);
        stats.tuples_processed += left_rows.len() as u64;
        let probe = |range: std::ops::Range<usize>| {
            let mut positions: Vec<u32> = Vec::new();
            let mut matches: Vec<u32> = Vec::new();
            for pos in range {
                let lrid = left_rows[pos];
                if let Some(found) = table.get(&left_col.key_at(lrid as usize)) {
                    for &rid in found {
                        positions.push(pos as u32);
                        matches.push(rid);
                    }
                }
            }
            (positions, matches)
        };
        let (new_positions, right_matches): (Vec<u32>, Vec<u32>) = if pool.is_serial() {
            probe(0..left_rows.len())
        } else {
            let ranges = chunk_ranges(left_rows.len(), pool.threads());
            let chunks: Vec<(Vec<u32>, Vec<u32>)> =
                pool.map_items(&ranges, |_, r| probe(r.clone()));
            let mut positions = Vec::new();
            let mut matches = Vec::new();
            for (p, m) in chunks {
                positions.extend(p);
                matches.extend(m);
            }
            (positions, matches)
        };

        // Re-materialize every existing alignment vector through the match
        // positions (full materialization, as MonetDB's operator-at-a-time
        // model requires), re-staging each through the pool under a budget.
        // The probe side's vector is already loaded — reuse it instead of
        // page-walking (or copying) it a second time.
        let mut new_alignment: HashMap<usize, U32Slot> = HashMap::new();
        for (&t, slot) in &alignment {
            let rows: Cow<'_, [u32]> = if t == left_table {
                Cow::Borrowed(left_rows.as_ref())
            } else {
                slot.load(spill)?
            };
            let gathered: Vec<u32> = new_positions.iter().map(|&p| rows[p as usize]).collect();
            stats.add_materialized(gathered.len() * 4);
            new_alignment.insert(t, U32Slot::stage(gathered, spill)?);
        }
        stats.add_materialized(right_matches.len() * 4);
        new_alignment.insert(right_table, U32Slot::stage(right_matches, spill)?);
        drop(left_rows);
        alignment = new_alignment;
    }
    let output_len = alignment
        .get(&first)
        .map(|v| v.len())
        .unwrap_or_else(|| selections[first].len());
    timings.record("join", t1.elapsed());

    // The gather phase reads each alignment vector repeatedly (once per
    // output column): load the final vectors once, through pin guards when
    // they sit in the spill space.
    let alignment: HashMap<usize, Vec<u32>> = alignment
        .into_iter()
        .map(|(t, slot)| match slot {
            U32Slot::Mem(v) => Ok((t, v)),
            spilled => spilled.load(spill).map(|v| (t, v.into_owned())),
        })
        .collect::<Result<_>>()?;

    // Helper: materialize a joined-schema column for the current alignment,
    // counting the gathered bytes exactly (every call site threads the real
    // counter set through — no clones that drop counts on the floor).
    let gather_joined = |joined_idx: usize, stats: &mut ExecStats| -> ColumnData {
        let (t, c) = joined_map[joined_idx];
        let rows = &alignment[&t];
        let g = stores[t].columns[c].gather(rows);
        stats.add_materialized(g.byte_size());
        g
    };

    // ---- Aggregation ------------------------------------------------------------
    let t2 = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    if let Some(spec) = &plan.aggregate {
        stats.add_calls(1);
        cancel.check()?;
        // Materialize group-key columns and aggregate argument vectors.
        let mut group_cols: Vec<(ColumnData, DataType)> = Vec::new();
        for &g in &spec.group_columns {
            let dtype = plan.joined_schema.column(g).dtype;
            group_cols.push((gather_joined(g, &mut stats), dtype));
        }
        let mut arg_vectors: Vec<Option<Vec<f64>>> = Vec::new();
        for a in &spec.aggregates {
            arg_vectors.push(
                a.arg
                    .as_ref()
                    .map(|e| eval_vectorized(e, output_len, &mut |i| gather_joined(i, &mut stats))),
            );
        }

        #[derive(Clone)]
        struct Acc {
            sum: f64,
            count: i64,
            min: f64,
            max: f64,
        }
        let mut groups: HashMap<Vec<i64>, (Vec<Value>, Vec<Acc>)> = HashMap::new();
        for i in 0..output_len {
            stats.tuples_processed += 1;
            let key: Vec<i64> = group_cols.iter().map(|(c, _)| c.key_at(i)).collect();
            stats.add_hashes(1);
            let entry = groups.entry(key).or_insert_with(|| {
                (
                    group_cols
                        .iter()
                        .map(|(c, dt)| c.value_at(i, *dt))
                        .collect(),
                    vec![
                        Acc {
                            sum: 0.0,
                            count: 0,
                            min: f64::INFINITY,
                            max: f64::NEG_INFINITY
                        };
                        spec.aggregates.len()
                    ],
                )
            });
            for (a, acc) in arg_vectors.iter().zip(entry.1.iter_mut()) {
                match a {
                    Some(vec) => {
                        let v = vec[i];
                        acc.sum += v;
                        acc.count += 1;
                        if v < acc.min {
                            acc.min = v;
                        }
                        if v > acc.max {
                            acc.max = v;
                        }
                    }
                    None => acc.count += 1,
                }
            }
        }
        // Global aggregate over empty input still yields no group, matching
        // the other engines (SQL would yield one row, but none of the
        // benchmarked queries hit this).
        for (_, (key_values, accs)) in groups {
            let values: Vec<Value> = plan
                .output
                .iter()
                .map(|o| match o {
                    OutputExpr::GroupColumn(ci) => {
                        let pos = spec.group_columns.iter().position(|g| g == ci).unwrap();
                        key_values[pos].clone()
                    }
                    OutputExpr::Aggregate(i) => {
                        let acc = &accs[*i];
                        let a = &spec.aggregates[*i];
                        match a.func {
                            AggFunc::Count => Value::Int64(acc.count),
                            AggFunc::Sum => match a.dtype {
                                DataType::Int64 => Value::Int64(acc.sum as i64),
                                DataType::Int32 => Value::Int32(acc.sum as i32),
                                _ => Value::Float64(acc.sum),
                            },
                            AggFunc::Avg => Value::Float64(acc.sum / acc.count.max(1) as f64),
                            AggFunc::Min => Value::Float64(acc.min),
                            AggFunc::Max => Value::Float64(acc.max),
                        }
                    }
                    OutputExpr::Scalar(_) => unreachable!("scalar output in aggregate plan"),
                })
                .collect();
            rows.push(Row::new(values));
        }
        timings.record("aggregation", t2.elapsed());
    } else {
        // Non-aggregate output: materialize each output column, then zip.
        stats.add_calls(1);
        cancel.check()?;
        let mut out_cols: Vec<(ColumnData, DataType)> = Vec::new();
        for (o, col) in plan.output.iter().zip(plan.output_schema.columns()) {
            out_cols.push(match o {
                OutputExpr::Scalar(ScalarExpr::Column { index, .. }) => {
                    (gather_joined(*index, &mut stats), col.dtype)
                }
                OutputExpr::Scalar(e) => (
                    ColumnData::F64(eval_vectorized(e, output_len, &mut |i| {
                        gather_joined(i, &mut stats)
                    })),
                    col.dtype,
                ),
                _ => unreachable!("aggregate output in non-aggregate plan"),
            });
        }
        for i in 0..output_len {
            rows.push(Row::new(
                out_cols.iter().map(|(c, dt)| c.value_at(i, *dt)).collect(),
            ));
        }
        timings.record("projection", t2.elapsed());
    }

    finalize_rows(&mut rows, &plan.order_by, plan.limit);
    stats.rows_out = rows.len() as u64;
    timings.record("total", started.elapsed());
    stats.io = db.pool_stats().since(&io_base);
    if let Some(ctx) = &spill_ctx {
        stats.spilled_temporaries = ctx.spill_count();
        stats.spill_claim_denied = ctx.claim_denied();
        stats.spill_consumer_peak_pages = ctx.meter().peak() as u64;
    }
    stats.peak_resident_pages = peak_window.map(|w| w.end() as u64).unwrap_or(0);
    stats.faults_injected = db
        .pool()
        .and_then(|p| p.fault_plan())
        .map(|plan| plan.injected())
        .unwrap_or(0)
        .saturating_sub(faults_base);
    Ok(QueryResult {
        schema: plan.output_schema.clone(),
        rows,
        stats,
        timings,
    })
}

/// Apply one filter column-at-a-time, producing a new selection vector.
///
/// The selection divides into contiguous chunks across `pool`; per-chunk
/// survivors concatenate in chunk order, reproducing the serial vector.
fn apply_filter(
    store: &ColumnStore,
    filter: &ColumnFilter,
    sel: &[u32],
    pool: &ScopedPool,
    stats: &mut ExecStats,
) -> Result<Vec<u32>> {
    let col = &store.columns[filter.column];
    let dtype = store.schema.column(filter.column).dtype;
    stats.add_comparisons(sel.len() as u64);
    let filter_chunk = |chunk: &[u32]| -> Result<Vec<u32>> {
        let mut out = Vec::with_capacity(chunk.len());
        match (col, dtype) {
            (ColumnData::Str(values), _) => {
                let needle = filter
                    .value
                    .as_str()
                    .ok_or_else(|| HiqueError::Execution("string filter on non-string".into()))?;
                for &i in chunk {
                    if filter.op.matches(values[i as usize].as_str().cmp(needle)) {
                        out.push(i);
                    }
                }
            }
            _ => {
                let constant = filter.value.as_f64()?;
                for &i in chunk {
                    if filter
                        .op
                        .matches(col.f64_at(i as usize).total_cmp(&constant))
                    {
                        out.push(i);
                    }
                }
            }
        }
        Ok(out)
    };
    if pool.is_serial() {
        return filter_chunk(sel);
    }
    let ranges = chunk_ranges(sel.len(), pool.threads());
    let chunks: Vec<Result<Vec<u32>>> =
        pool.map_items(&ranges, |_, r| filter_chunk(&sel[r.clone()]));
    let mut out = Vec::with_capacity(sel.len());
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Evaluate a scalar expression one column at a time, producing a
/// materialized `f64` vector of length `len`.  `gather` receives the real
/// counter set through its captured environment, so every gathered column
/// is counted exactly.
fn eval_vectorized(
    expr: &ScalarExpr,
    len: usize,
    gather: &mut dyn FnMut(usize) -> ColumnData,
) -> Vec<f64> {
    match expr {
        ScalarExpr::Column { index, .. } => {
            let col = gather(*index);
            (0..len).map(|i| col.f64_at(i)).collect()
        }
        ScalarExpr::Literal(v) => vec![v.as_f64().unwrap_or(f64::NAN); len],
        ScalarExpr::Binary {
            op, left, right, ..
        } => {
            let l = eval_vectorized(left, len, gather);
            let r = eval_vectorized(right, len, gather);
            l.iter()
                .zip(&r)
                .map(|(a, b)| match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_plan::{plan_query, CatalogProvider, PlannerConfig};
    use hique_storage::Catalog;
    use hique_types::{Column, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
                Column::new("tag", DataType::Char(4)),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Int32),
            ]),
        )
        .unwrap();
        for i in 0..200 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 20),
                    Value::Float64(i as f64),
                    Value::Str(if i % 2 == 0 { "ev" } else { "od" }.into()),
                ]))
                .unwrap();
        }
        for i in 0..40 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i % 20), Value::Int32(i)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat.analyze_table("s").unwrap();
        cat
    }

    fn run_both(sql: &str, cat: &Catalog) -> (QueryResult, QueryResult) {
        run_both_config(sql, cat, &PlannerConfig::default())
    }

    fn run_both_config(
        sql: &str,
        cat: &Catalog,
        config: &PlannerConfig,
    ) -> (QueryResult, QueryResult) {
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(cat)).unwrap();
        let plan = plan_query(&bound, cat, config).unwrap();
        let db = DsmDatabase::from_catalog(cat).unwrap();
        let dsm = execute_plan(&plan, &db).unwrap();
        let iter = hique_iter::execute_plan(&plan, cat, hique_iter::ExecMode::Optimized).unwrap();
        (dsm, iter)
    }

    #[test]
    fn selection_and_projection_match_iterator_engine() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select v, tag from r where k = 3 and v < 100 order by v",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert!(dsm.stats.bytes_materialized > 0);
    }

    #[test]
    fn join_aggregation_matches_iterator_engine() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select r.k, sum(r.v * (1 - 0.1)) as sv, count(*) as n from r, s \
             where r.k = s.k group by r.k order by r.k",
            &cat,
        );
        assert_eq!(dsm.rows.len(), 20);
        for (a, b) in dsm.rows.iter().zip(&iter.rows) {
            assert_eq!(a.get(0), b.get(0));
            assert!((a.get(1).as_f64().unwrap() - b.get(1).as_f64().unwrap()).abs() < 1e-6);
            assert_eq!(a.get(2), b.get(2));
        }
    }

    #[test]
    fn materialization_accounting_is_exact() {
        // Single-table aggregate with an expression argument: every
        // materialized intermediate is enumerable by hand, so the counter
        // must equal the exact sum — this pins the fix for the historical
        // under-count where expression-argument gathers were recorded into
        // a cloned (and discarded) counter set.
        let cat = catalog();
        let (dsm, _) = run_both(
            "select k, sum(v * 2) as d from r group by k order by k",
            &cat,
        );
        let expected = 200 * 4   // selection vector over r (200 row ids)
            + 200 * 4            // gathered group-key column k (I32)
            + 200 * 8; // gathered argument column v (F64) inside sum(v * 2)
        assert_eq!(dsm.stats.bytes_materialized, expected as u64);
    }

    #[test]
    fn parallel_dsm_execution_matches_serial_bit_exactly() {
        let cat = catalog();
        let queries = [
            "select v, tag from r where k = 3 and v < 100 order by v",
            "select r.k, sum(r.v) as sv, count(*) as n from r, s \
             where r.k = s.k group by r.k order by r.k",
            "select tag, max(v) as mx from r group by tag order by mx desc",
        ];
        for sql in queries {
            let (serial, _) = run_both_config(sql, &cat, &PlannerConfig::default().with_threads(1));
            for threads in [2usize, 4] {
                let (par, _) =
                    run_both_config(sql, &cat, &PlannerConfig::default().with_threads(threads));
                assert_eq!(par.rows, serial.rows, "{sql} x{threads}");
                assert_eq!(par.stats, serial.stats, "{sql} x{threads}");
            }
        }
    }

    #[test]
    fn budgeted_dsm_execution_spills_alignment_vectors() {
        // One page of budget: the post-join alignment vectors (400 entries,
        // 1600 bytes) sit above the ~1 KB spill threshold.
        const BUDGET: usize = 1;
        let sql = "select r.k, sum(r.v) as sv, count(*) as n from r, s \
                   where r.k = s.k group by r.k order by r.k";
        let plain = catalog();
        let (unbounded, _) = run_both(sql, &plain);
        let mut paged = catalog();
        paged.spill_to_disk(BUDGET).unwrap();
        for threads in [1usize, 4] {
            let config = PlannerConfig::default()
                .with_threads(threads)
                .with_memory_budget_pages(BUDGET);
            let (budgeted, _) = run_both_config(sql, &paged, &config);
            assert_eq!(budgeted.rows, unbounded.rows, "threads={threads}");
            assert!(
                budgeted.stats.spilled_temporaries > 0,
                "threads={threads}: no alignment vector spilled under a {BUDGET}-page budget"
            );
            assert!(
                budgeted.stats.peak_resident_pages <= BUDGET as u64,
                "peak {} > budget {BUDGET}",
                budgeted.stats.peak_resident_pages
            );
            let io = budgeted.stats.io;
            assert!(io.pool_hits + io.pool_misses > 0, "no pool traffic");
        }
    }

    #[test]
    fn cancelled_dsm_execution_surfaces_a_typed_error() {
        let cat = catalog();
        let sql = "select r.k, sum(r.v) as sv from r, s where r.k = s.k group by r.k";
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        let db = DsmDatabase::from_catalog(&cat).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = execute_plan_cancellable(&plan, &db, cancel).unwrap_err();
        assert!(matches!(err, HiqueError::Cancelled(_)), "{err}");
        let ok = execute_plan_cancellable(
            &plan,
            &db,
            CancelToken::with_deadline(std::time::Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(ok.stats.cancelled, 0);
        assert_eq!(ok.stats.faults_injected, 0);
    }

    #[test]
    fn scalar_expression_outputs() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select v * 2 as d, tag from r where k = 1 order by d limit 4",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert_eq!(dsm.num_rows(), 4);
    }

    #[test]
    fn order_desc_and_global_aggregate() {
        let cat = catalog();
        let (dsm, iter) = run_both(
            "select tag, max(v) as mx from r group by tag order by mx desc",
            &cat,
        );
        assert_eq!(dsm.rows, iter.rows);
        assert_eq!(dsm.rows[0].get(1), &Value::Float64(199.0));
    }
}
