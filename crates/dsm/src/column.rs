//! Vertical decomposition: typed column arrays and the column store.

use std::collections::HashMap;
use std::sync::Arc;

use hique_storage::{BufferPool, BufferPoolStats, Catalog, TableHeap, TempSpace};
use hique_types::tuple::{read_f64_at, read_i32_at, read_i64_at, read_str_at};
use hique_types::{DataType, HiqueError, Result, Schema, Value};

/// One decomposed column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers (also used for dates).
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Doubles.
    F64(Vec<f64>),
    /// Strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate in-memory size in bytes (used by the materialization
    /// counters).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 8).sum(),
        }
    }

    /// Value at position `i` as an `f64` (numeric columns only).
    #[inline]
    pub fn f64_at(&self, i: usize) -> f64 {
        match self {
            ColumnData::I32(v) => v[i] as f64,
            ColumnData::I64(v) => v[i] as f64,
            ColumnData::F64(v) => v[i],
            ColumnData::Str(_) => f64::NAN,
        }
    }

    /// Value at position `i` as an `i64` key image (strings hash by prefix).
    #[inline]
    pub fn key_at(&self, i: usize) -> i64 {
        match self {
            ColumnData::I32(v) => v[i] as i64,
            ColumnData::I64(v) => v[i],
            ColumnData::F64(v) => v[i].to_bits() as i64,
            ColumnData::Str(v) => {
                let bytes = v[i].as_bytes();
                let mut buf = [0u8; 8];
                let n = bytes.len().min(8);
                buf[..n].copy_from_slice(&bytes[..n]);
                i64::from_be_bytes(buf)
            }
        }
    }

    /// Boxed value at position `i` (result construction only).
    pub fn value_at(&self, i: usize, dtype: DataType) -> Value {
        match self {
            ColumnData::I32(v) => {
                if dtype == DataType::Date {
                    Value::Date(v[i])
                } else {
                    Value::Int32(v[i])
                }
            }
            ColumnData::I64(v) => Value::Int64(v[i]),
            ColumnData::F64(v) => Value::Float64(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Gather the values at `positions` into a new column.
    pub fn gather(&self, positions: &[u32]) -> ColumnData {
        match self {
            ColumnData::I32(v) => {
                ColumnData::I32(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::I64(v) => {
                ColumnData::I64(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::F64(v) => {
                ColumnData::F64(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(positions.iter().map(|&p| v[p as usize].clone()).collect())
            }
        }
    }
}

/// A vertically decomposed table.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    /// The table's schema.
    pub schema: Schema,
    /// One decomposed array per column, aligned with `schema.columns()`.
    pub columns: Vec<ColumnData>,
    /// Number of rows.
    pub rows: usize,
}

impl ColumnStore {
    /// Decompose an NSM heap into column arrays (the DSM "storage layer";
    /// done at load time, not charged to query execution).  The scan goes
    /// through the heap's mode-agnostic record visitor, so a pool-backed
    /// heap decomposes through pinned frames like any other reader.
    pub fn from_heap(heap: &TableHeap) -> Result<ColumnStore> {
        let schema = heap.schema().clone();
        let n = heap.num_tuples();
        let mut columns: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| match c.dtype {
                DataType::Int32 | DataType::Date => ColumnData::I32(Vec::with_capacity(n)),
                DataType::Int64 => ColumnData::I64(Vec::with_capacity(n)),
                DataType::Float64 => ColumnData::F64(Vec::with_capacity(n)),
                DataType::Char(_) => ColumnData::Str(Vec::with_capacity(n)),
            })
            .collect();
        heap.for_each_record(|record| {
            for (c, col) in schema.columns().iter().enumerate() {
                let off = schema.offset(c);
                match (&mut columns[c], col.dtype) {
                    (ColumnData::I32(v), _) => v.push(read_i32_at(record, off)),
                    (ColumnData::I64(v), _) => v.push(read_i64_at(record, off)),
                    (ColumnData::F64(v), _) => v.push(read_f64_at(record, off)),
                    (ColumnData::Str(v), DataType::Char(w)) => {
                        v.push(read_str_at(record, off, w as usize).to_string())
                    }
                    (ColumnData::Str(v), _) => v.push(String::new()),
                }
            }
        })?;
        Ok(ColumnStore {
            schema,
            columns,
            rows: n,
        })
    }
}

/// All tables of the database, vertically decomposed, plus (for a paged
/// source catalog) handles to its buffer pool and spill space so the DSM
/// executor can route its own intermediates — alignment and gather vectors
/// — through the same `memory_budget_pages` frames.
#[derive(Debug, Default)]
pub struct DsmDatabase {
    tables: HashMap<String, ColumnStore>,
    pool: Option<Arc<BufferPool>>,
    temp: Option<Arc<TempSpace>>,
}

impl DsmDatabase {
    /// Decompose every table of the catalog.  A paged catalog's storage
    /// runtime (pool + spill space) is captured so budgeted DSM executions
    /// can spill their intermediates.
    pub fn from_catalog(catalog: &Catalog) -> Result<DsmDatabase> {
        let mut tables = HashMap::new();
        for name in catalog.table_names() {
            let info = catalog.table(name).expect("listed table exists");
            tables.insert(name.to_string(), ColumnStore::from_heap(&info.heap)?);
        }
        Ok(DsmDatabase {
            tables,
            pool: catalog.storage().map(|s| Arc::clone(s.pool())),
            temp: catalog.storage().map(|s| Arc::clone(s.temp())),
        })
    }

    /// Look up a decomposed table.
    pub fn table(&self, name: &str) -> Result<&ColumnStore> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HiqueError::Catalog(format!("unknown DSM table '{name}'")))
    }

    /// The source catalog's buffer pool, when it runs in paged mode.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// The source catalog's spill space, when it runs in paged mode.
    pub fn temp(&self) -> Option<&Arc<TempSpace>> {
        self.temp.as_ref()
    }

    /// Snapshot of the pool counters (zeros without a paged source).
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.as_ref().map(|p| p.stats()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_types::{Column, Row};

    fn heap() -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("i", DataType::Int32),
            Column::new("f", DataType::Float64),
            Column::new("s", DataType::Char(4)),
            Column::new("d", DataType::Date),
        ]);
        TableHeap::from_rows(
            schema,
            (0..100).map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Float64(i as f64 / 2.0),
                    Value::Str(format!("s{}", i % 3)),
                    Value::Date(1000 + i),
                ])
            }),
        )
        .unwrap()
    }

    #[test]
    fn decomposition_round_trips_values() {
        let store = ColumnStore::from_heap(&heap()).unwrap();
        assert_eq!(store.rows, 100);
        assert_eq!(store.columns.len(), 4);
        assert_eq!(store.columns[0].len(), 100);
        assert_eq!(
            store.columns[0].value_at(7, DataType::Int32),
            Value::Int32(7)
        );
        assert_eq!(store.columns[1].f64_at(9), 4.5);
        assert_eq!(
            store.columns[2].value_at(4, DataType::Char(4)),
            Value::Str("s1".into())
        );
        assert_eq!(
            store.columns[3].value_at(0, DataType::Date),
            Value::Date(1000)
        );
        assert!(store.columns[1].byte_size() >= 800);
        assert!(!store.columns[0].is_empty());
    }

    #[test]
    fn gather_and_keys() {
        let store = ColumnStore::from_heap(&heap()).unwrap();
        let sel = vec![3u32, 5, 7];
        let g = store.columns[0].gather(&sel);
        assert_eq!(g, ColumnData::I32(vec![3, 5, 7]));
        let gs = store.columns[2].gather(&sel);
        assert_eq!(gs.len(), 3);
        assert_eq!(store.columns[0].key_at(42), 42);
        assert_ne!(store.columns[2].key_at(0), store.columns[2].key_at(1));
        assert_eq!(store.columns[2].key_at(0), store.columns[2].key_at(3));
    }

    #[test]
    fn database_from_catalog() {
        let mut catalog = Catalog::new();
        catalog.register_table("t", heap()).unwrap();
        let db = DsmDatabase::from_catalog(&catalog).unwrap();
        assert!(db.table("t").is_ok());
        assert!(db.table("T").is_ok());
        assert!(db.table("missing").is_err());
    }
}
