//! # hique-par
//!
//! A minimal scoped thread pool for partition-parallel query execution.
//!
//! The paper's staging phase hands the engine its parallel decomposition for
//! free: staged partitions (and page ranges of a table scan) are independent
//! units of work.  This crate provides the scheduling primitive the engine
//! kernels build on, with two properties the conformance harness depends on:
//!
//! * **Deterministic work division.**  Tasks are defined by the caller
//!   (one per chunk/partition), never by the scheduler; [`chunk_ranges`]
//!   depends only on `(items, chunks)`.  Which OS thread runs a task varies
//!   between runs, but *what* each task computes does not.
//! * **Deterministic merge order.**  [`ScopedPool::map`] returns results in
//!   task-index order regardless of completion order, so callers can
//!   concatenate worker outputs in the same order a serial loop would have
//!   produced them.
//!
//! The implementation is std-only (the build environment has no crates.io
//! access, the same constraint as `crates/shims/`): scoped threads pull task
//! indexes from a shared atomic counter, so skewed workloads (one huge
//! partition) do not idle the remaining workers behind a static assignment.
//!
//! Workers are spawned per [`ScopedPool::map`] call rather than parked in a
//! long-lived pool: `std::thread::scope` lets tasks borrow the caller's
//! stack (relations, heaps, compiled kernels) without `'static` bounds or
//! channels, and the spawn cost is tens of microseconds per call — noise
//! against the hundreds-of-milliseconds phases the engine divides.  If
//! per-call spawn ever shows up in profiles, the replacement is a parked
//! worker set behind the same `map` contract.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A scoped worker pool of a fixed width.
///
/// `threads == 1` is the serial pool: every operation runs inline on the
/// caller's thread, with no thread spawn, no locking and no behavioural
/// difference from a plain loop.  Engine kernels therefore use one code path
/// for both the serial baseline and the parallel mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopedPool {
    threads: usize,
}

impl ScopedPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ScopedPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: all work runs inline on the calling thread.
    pub fn serial() -> Self {
        ScopedPool { threads: 1 }
    }

    /// A pool as wide as the machine (`std::thread::available_parallelism`).
    pub fn machine_wide() -> Self {
        ScopedPool::new(available_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool runs everything inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Apply `f` to every index in `0..tasks` and return the results in
    /// index order.
    ///
    /// Tasks are claimed dynamically (shared atomic cursor), so a skewed
    /// task-cost distribution still keeps all workers busy; the result
    /// vector is assembled in index order afterwards, so output order is
    /// independent of scheduling.  With a serial pool (or fewer than two
    /// tasks) this degenerates to a plain loop on the caller's thread.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let workers = self.threads.min(tasks);
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(tasks));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        let mut indexed = collected.into_inner().unwrap();
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(indexed.len(), tasks);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Apply `f` to every element of `items`, returning results in item
    /// order (see [`ScopedPool::map`]).
    pub fn map_items<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'a T) -> R + Sync,
    {
        self.map(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`ScopedPool::map_items`], but each task receives its item *by
    /// value* — the fan-out for work that consumes its input (chunk sorts,
    /// scatters) without cloning it per task.  Each slot is taken exactly
    /// once (tasks claim disjoint indexes), so the per-item mutex never
    /// contends; results come back in item order as always.
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map(slots.len(), |i| {
            let item = slots[i]
                .lock()
                .expect("slot mutex poisoned")
                .take()
                .expect("each task index is claimed exactly once");
            f(i, item)
        })
    }
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..items` into at most `chunks` contiguous, near-equal ranges.
///
/// The division depends only on the two arguments — never on scheduling —
/// which is what makes chunk-parallel kernels reproducible: the same
/// `(items, chunks)` always yields the same chunk boundaries, and
/// concatenating per-chunk outputs in range order reproduces the serial
/// processing order.  Empty ranges are never returned; fewer than `chunks`
/// ranges are returned when `items < chunks`.
pub fn chunk_ranges(items: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(items.max(1));
    if items == 0 {
        return Vec::new();
    }
    let base = items / chunks;
    let extra = items % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, items);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ScopedPool::serial();
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let ids = pool.map(4, |i| (i, std::thread::current().id()));
        assert_eq!(
            ids.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert!(ids.iter().all(|(_, t)| *t == caller));
    }

    #[test]
    fn map_returns_results_in_task_order() {
        let pool = ScopedPool::new(4);
        // Uneven task costs: completion order differs from index order, the
        // result order must not.
        let out = pool.map(64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_for_any_width() {
        let expect: Vec<usize> = (0..37).map(|i| i + 100).collect();
        for threads in [1, 2, 3, 4, 9, 64] {
            let pool = ScopedPool::new(threads);
            assert_eq!(pool.map(37, |i| i + 100), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_items_passes_index_and_item() {
        let pool = ScopedPool::new(3);
        let items = ["a", "b", "c", "d"];
        let out = pool.map_items(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, ["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn map_owned_moves_items_and_keeps_order() {
        // Non-Clone items prove the by-value contract; order must match
        // item order for any width.
        struct NoClone(usize);
        for threads in [1, 2, 4, 9] {
            let pool = ScopedPool::new(threads);
            let items: Vec<NoClone> = (0..23).map(NoClone).collect();
            let out = pool.map_owned(items, |i, item| {
                assert_eq!(i, item.0);
                item.0 * 2
            });
            assert_eq!(out, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        }
        assert!(ScopedPool::new(4)
            .map_owned(Vec::<u8>::new(), |_, b| b)
            .is_empty());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = ScopedPool::new(8);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 1), [1]);
    }

    #[test]
    fn zero_width_pool_clamps_to_one() {
        assert_eq!(ScopedPool::new(0).threads(), 1);
        assert!(ScopedPool::new(0).is_serial());
        assert!(available_threads() >= 1);
        assert!(ScopedPool::machine_wide().threads() >= 1);
    }

    #[test]
    fn chunk_ranges_cover_everything_exactly_once() {
        for items in [0usize, 1, 2, 7, 64, 1000, 1001] {
            for chunks in [1usize, 2, 3, 4, 7, 64] {
                let ranges = chunk_ranges(items, chunks);
                // No empty ranges; contiguous; covers 0..items.
                let mut next = 0usize;
                for r in &ranges {
                    assert!(!r.is_empty(), "items={items} chunks={chunks}");
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, items);
                assert!(ranges.len() <= chunks);
                if items > 0 {
                    assert_eq!(ranges.len(), chunks.min(items));
                    // Near-equal: sizes differ by at most one.
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_are_deterministic() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }
}
