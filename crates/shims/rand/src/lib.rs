//! Offline shim for the slice of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! [`rngs::SmallRng`], [`Rng`] (`gen_range` over integer/float ranges,
//! `gen_bool`) and [`SeedableRng::seed_from_u64`] with a deterministic
//! xoshiro256++ generator. Streams differ from upstream `rand` — everything
//! in this workspace only relies on seeded determinism, not on matching
//! upstream byte-for-byte.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), standing in
    /// for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..100i32) == c.gen_range(0..100i32));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
            let u = rng.gen_range(5..8usize);
            assert!((5..8).contains(&u));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
