//! Offline shim for the small slice of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a [`Mutex`] with parking_lot's panic-free `lock()` signature, backed by
//! `std::sync::Mutex`. Poisoning is ignored (parking_lot has no poisoning),
//! which matches the semantics callers were written against.

use std::sync::TryLockError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
