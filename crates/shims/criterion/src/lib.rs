//! Offline shim for the slice of the `criterion` API this workspace's
//! benches use.
//!
//! The build environment has no access to crates.io. This crate keeps the
//! `crates/bench/benches/*.rs` sources compiling and *running* — each
//! benchmark is warmed up and timed for roughly the configured measurement
//! window, and the mean wall-clock time per iteration is printed — without
//! criterion's statistics, plotting or report machinery. Numbers printed by
//! this shim are indicative only; the `fig*`/`table*` binaries in
//! `crates/bench/src/bin/` remain the reproducible measurement path.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark case (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Config {
    /// Clamp both windows to the `CRITERION_SHIM_BUDGET_MS` environment
    /// variable (if set), overriding whatever the bench configured.  CI uses
    /// this to *execute* every bench case on a tiny time budget.
    fn clamped_to_budget(self) -> Self {
        self.clamped_to(
            std::env::var("CRITERION_SHIM_BUDGET_MS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok()),
        )
    }

    fn clamped_to(mut self, budget_ms: Option<u64>) -> Self {
        if let Some(ms) = budget_ms {
            let budget = Duration::from_millis(ms.max(1));
            self.measurement_time = self.measurement_time.min(budget);
            self.warm_up_time = self
                .warm_up_time
                .min(budget / 4)
                .max(Duration::from_millis(1));
        }
        self
    }
}

fn run_case(name: &str, config: Config, mut routine: impl FnMut(&mut Bencher)) {
    let config = config.clamped_to_budget();
    // Warm-up: run single iterations until the warm-up window is spent, to
    // estimate the per-iteration cost.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    let mut probes = 0u32;
    while warm_up_start.elapsed() < config.warm_up_time || probes == 0 {
        routine(&mut probe);
        per_iter += probe.elapsed;
        probes += 1;
        if probes >= 1000 {
            break;
        }
    }
    per_iter /= probes;

    let iters = if per_iter.is_zero() {
        1000
    } else {
        (config.measurement_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    println!(
        "bench: {name:<56} {:>12.3} µs/iter ({iters} iters)",
        mean * 1e6
    );
}

/// Group of related benchmark cases, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.config.warm_up_time = duration;
        self
    }

    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_case(&format!("{}/{}", self.name, id), self.config, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_case(&format!("{}/{}", self.name, id), self.config, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level handle, mirroring criterion's `Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            config: Config::default(),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_case(&id.to_string(), Config::default(), &mut f);
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_times_a_case() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn budget_clamps_both_windows() {
        // Tested through the injected budget (not the real environment):
        // sibling tests read the variable concurrently via run_case, and
        // mutating process-wide env from a parallel test is a data race.
        let generous = Config {
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(10),
        };
        let clamped = generous.clamped_to(Some(40));
        assert_eq!(clamped.measurement_time, Duration::from_millis(40));
        assert_eq!(clamped.warm_up_time, Duration::from_millis(10));
        // Without a budget the config passes through untouched.
        assert_eq!(
            generous.clamped_to(None).measurement_time,
            Duration::from_secs(10)
        );
    }
}
