//! # hique-pipeline
//!
//! The partition-pipeline substrate shared by all five engine modes.
//!
//! The paper stages every input into cache-resident partitions and evaluates
//! each partition with a tight kernel; under a memory budget those staged
//! partitions live in the catalog's [`TempSpace`] as buffer-pool pages.
//! This crate is the one place that knows how to get them back out:
//!
//! * [`SpillContext`] — the per-execution spill namespace claim plus the
//!   size-only spill policy (`memory_budget_pages / 4` of page data), shared
//!   by the holistic, iterator and DSM engines so every engine spills the
//!   same temporaries for the same budget regardless of thread count;
//! * [`PartitionStream`] — a read view of one partition that yields records
//!   **page-at-a-time through pool pin guards** whether the partition is a
//!   memory-resident packed buffer or a spilled page range.  Consumers that
//!   can stream (aggregation scans, output decoding, scatter passes) never
//!   re-materialize a spilled partition; consumers that genuinely need
//!   random access (sorts, merge cursors) call [`PartitionStream::gather`]
//!   explicitly, and the [`ResidencyMeter`] records how many pages each
//!   style held resident so tests can prove the streaming paths stay under
//!   the budget where whole-partition reload could not;
//! * [`PartitionSet`] — the deterministic fan-out: partitions map across a
//!   [`ScopedPool`] in partition order (same chunking/merge rules as the
//!   PR-2 holistic kernels), so `threads = 1 ≡ threads = N` holds for every
//!   engine that drives its per-partition work through it.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use hique_par::ScopedPool;
use hique_storage::{
    records_per_page, SpillHandle, SpillNamespace, TempSpace, PAGE_HEADER_SIZE, PAGE_SIZE,
};
use hique_types::{CancelToken, HiqueError, Result};

/// Bytes of record data one spill page holds.
pub fn page_data_bytes() -> usize {
    PAGE_SIZE - PAGE_HEADER_SIZE
}

// ---------------------------------------------------------------------------
// Residency accounting
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MeterInner {
    current: AtomicUsize,
    peak: AtomicUsize,
}

/// Tracks how many pages' worth of spilled data a consumer holds
/// materialized outside the buffer pool at any moment, with a high-water
/// mark.  Page-at-a-time streams register one page per pin; explicit
/// gathers register the whole range — which is exactly the difference the
/// `peak ≤ budget` tests assert on.
#[derive(Debug, Clone, Default)]
pub struct ResidencyMeter {
    inner: Arc<MeterInner>,
}

/// RAII registration of `pages` resident pages on a [`ResidencyMeter`].
pub struct ResidencyGuard {
    inner: Arc<MeterInner>,
    pages: usize,
}

impl ResidencyMeter {
    /// A fresh meter (current = peak = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `pages` materialized pages until the guard drops.
    pub fn track(&self, pages: usize) -> ResidencyGuard {
        let now = self.inner.current.fetch_add(pages, Ordering::Relaxed) + pages;
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
        ResidencyGuard {
            inner: Arc::clone(&self.inner),
            pages,
        }
    }

    /// Pages currently registered.
    pub fn current(&self) -> usize {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently registered pages.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }
}

impl Drop for ResidencyGuard {
    fn drop(&mut self) {
        self.inner.current.fetch_sub(self.pages, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spill context
// ---------------------------------------------------------------------------

/// Spill policy of one execution: where to spill and from what size.
///
/// Claims a private [`SpillNamespace`] from the catalog's spill space, so
/// any number of concurrent budgeted executions can spill simultaneously
/// without touching each other's pages.  When the space's admission cap is
/// reached, [`SpillContext::acquire`] queues for a slot — the wait is
/// surfaced through [`SpillContext::claim_denied`] and a queue timeout is a
/// typed error, never a silent fallback to an unbounded working set.  The
/// namespace (its file, frames and admission slot) is released when the
/// context drops.
pub struct SpillContext {
    space: SpillNamespace,
    threshold_bytes: usize,
    spilled: AtomicU64,
    denied: bool,
    meter: ResidencyMeter,
    cancel: CancelToken,
}

impl SpillContext {
    /// Claim a spill namespace for one budgeted execution, spilling
    /// temporaries larger than a quarter of the page budget's data capacity
    /// — big enough that small queries stay memory-resident, small enough
    /// that anything actually pressuring the budget goes to the pool.
    pub fn acquire(temp: &Arc<TempSpace>, budget_pages: usize) -> Result<Self> {
        Self::acquire_cancellable(temp, budget_pages, CancelToken::disabled())
    }

    /// [`SpillContext::acquire`] under a cancellation token.  The admission
    /// wait observes the token (a query queued for a spill slot cancels
    /// within its deadline instead of blocking out the 30 s claim timeout),
    /// and every spilled page pull through this context re-checks it, so a
    /// cancelled execution stops at the next page boundary.
    pub fn acquire_cancellable(
        temp: &Arc<TempSpace>,
        budget_pages: usize,
        cancel: CancelToken,
    ) -> Result<Self> {
        let (space, denied) = temp.claim_cancellable(&cancel)?;
        Ok(SpillContext {
            space,
            threshold_bytes: budget_pages.saturating_mul(page_data_bytes()) / 4,
            spilled: AtomicU64::new(0),
            denied,
            meter: ResidencyMeter::new(),
            cancel,
        })
    }

    /// The cancellation token this execution observes.
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// 1 when this execution's claim was initially denied and had to queue
    /// for an admission slot, 0 otherwise (`ExecStats::spill_claim_denied`).
    pub fn claim_denied(&self) -> u64 {
        u64::from(self.denied)
    }

    /// Byte size above which a temporary is spilled.
    pub fn threshold_bytes(&self) -> usize {
        self.threshold_bytes
    }

    /// The size-only spill decision: `true` when a temporary of `bytes`
    /// bytes goes to the pool.  Depends on nothing but the byte size and
    /// the budget, so `threads = N` spills exactly what `threads = 1`
    /// spills and results stay bit-identical for every budget.
    pub fn should_spill(&self, bytes: usize) -> bool {
        bytes >= self.threshold_bytes.max(1)
    }

    /// The spill namespace this context writes to.
    pub fn temp(&self) -> &SpillNamespace {
        &self.space
    }

    /// Write a packed record buffer into the spill namespace, counting it as
    /// one spilled temporary.
    pub fn spill(&self, buf: &[u8], tuple_size: usize) -> Result<SpillHandle> {
        let handle = self.space.spill_records(buf, tuple_size)?;
        self.spilled.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Number of temporaries spilled through this context so far.
    pub fn spill_count(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// The consumer-residency meter of this execution.
    pub fn meter(&self) -> &ResidencyMeter {
        &self.meter
    }
}

// ---------------------------------------------------------------------------
// Partition streams
// ---------------------------------------------------------------------------

/// Where one partition's records live.
enum Source<'a> {
    /// A memory-resident packed buffer.
    Mem(&'a [u8]),
    /// A spilled page range, read back through pool pin guards.
    Spilled {
        ctx: &'a SpillContext,
        handle: SpillHandle,
    },
}

/// A read view of one partition that yields packed records page-at-a-time,
/// independent of whether the partition is memory-resident or spilled.
///
/// Memory partitions are chunked into page-shaped slices (the same
/// `records_per_page` grouping a spill would have produced), so a consumer
/// written against `for_each_page` behaves identically — byte-for-byte, in
/// the same order — for both sources and therefore for every memory budget.
pub struct PartitionStream<'a> {
    source: Source<'a>,
    tuple_size: usize,
}

impl<'a> PartitionStream<'a> {
    /// Stream over a memory-resident packed buffer.
    pub fn mem(buf: &'a [u8], tuple_size: usize) -> Self {
        debug_assert!(tuple_size > 0 && buf.len().is_multiple_of(tuple_size));
        PartitionStream {
            source: Source::Mem(buf),
            tuple_size,
        }
    }

    /// Stream over a spilled page range of `ctx`'s spill space.
    pub fn spilled(ctx: &'a SpillContext, handle: SpillHandle) -> Self {
        PartitionStream {
            source: Source::Spilled { ctx, handle },
            tuple_size: handle.tuple_size,
        }
    }

    /// Record width in bytes.
    pub fn tuple_size(&self) -> usize {
        self.tuple_size
    }

    /// Number of records in the partition.
    pub fn num_records(&self) -> usize {
        match &self.source {
            Source::Mem(buf) => buf.len() / self.tuple_size.max(1),
            Source::Spilled { handle, .. } => handle.records,
        }
    }

    /// Total bytes of record data.
    pub fn data_bytes(&self) -> usize {
        self.num_records() * self.tuple_size
    }

    /// True when the partition lives in the spill space.
    pub fn is_spilled(&self) -> bool {
        matches!(self.source, Source::Spilled { .. })
    }

    /// Visit the partition's records as page-shaped packed slices, in
    /// record order.  Spilled pages are pinned one at a time (and counted on
    /// the context's [`ResidencyMeter`]); memory buffers are sliced into the
    /// same page-shaped chunks.
    pub fn for_each_page(&self, mut f: impl FnMut(&[u8])) -> Result<()> {
        let ts = self.tuple_size.max(1);
        match &self.source {
            Source::Mem(buf) => {
                let per_page = records_per_page(ts).max(1);
                for chunk in buf.chunks(per_page * ts) {
                    f(chunk);
                }
                Ok(())
            }
            Source::Spilled { ctx, handle } => {
                for i in 0..handle.pages {
                    ctx.cancel.check()?;
                    let guard = ctx.space.page_guard(handle, i)?;
                    let _resident = ctx.meter.track(1);
                    f(guard.data());
                }
                Ok(())
            }
        }
    }

    /// Visit every record of the partition in order.
    pub fn for_each_record(&self, mut f: impl FnMut(&[u8])) -> Result<()> {
        let ts = self.tuple_size.max(1);
        self.for_each_page(|page| {
            for rec in page.chunks_exact(ts) {
                f(rec);
            }
        })
    }

    /// Materialize the whole partition as one packed buffer — the explicit
    /// escape hatch for consumers that need random access (sorts, merge
    /// cursors).  Built page-at-a-time through pin guards; the range is
    /// registered on the residency meter for the span of the gather so the
    /// gap between streaming and gathering consumers stays observable.
    pub fn gather(&self) -> Result<Vec<u8>> {
        self.gather_tracked().map(|(buf, _guard)| buf)
    }

    /// [`PartitionStream::gather`], returning the residency registration to
    /// the caller.  A consumer that holds several gathered partitions alive
    /// at once (e.g. materializing a whole spilled relation) keeps the
    /// guards until it is done, so the meter's high-water reflects the
    /// *cumulative* footprint instead of one partition at a time.
    pub fn gather_tracked(&self) -> Result<(Vec<u8>, Option<ResidencyGuard>)> {
        match &self.source {
            Source::Mem(buf) => Ok((buf.to_vec(), None)),
            Source::Spilled { ctx, handle } => {
                let expect = handle.records * handle.tuple_size;
                let mut out = Vec::with_capacity(expect);
                for i in 0..handle.pages {
                    ctx.cancel.check()?;
                    let guard = ctx.space.page_guard(handle, i)?;
                    out.extend_from_slice(guard.data());
                }
                if out.len() != expect {
                    return Err(HiqueError::Storage(format!(
                        "spilled partition gathered {} bytes, expected {expect}",
                        out.len()
                    )));
                }
                Ok((out, Some(ctx.meter.track(handle.pages))))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Partition-set fan-out
// ---------------------------------------------------------------------------

/// A set of partition streams plus the deterministic fan-out rule every
/// engine shares: per-partition work maps across the pool and the results
/// are merged in partition order, reproducing the serial processing order
/// for any pool width.
pub struct PartitionSet<'a> {
    streams: Vec<PartitionStream<'a>>,
}

impl<'a> PartitionSet<'a> {
    /// A set over the given streams (partition order preserved).
    pub fn new(streams: Vec<PartitionStream<'a>>) -> Self {
        PartitionSet { streams }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the set holds no partitions.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The streams in partition order.
    pub fn streams(&self) -> &[PartitionStream<'a>] {
        &self.streams
    }

    /// Total records across partitions.
    pub fn num_records(&self) -> usize {
        self.streams.iter().map(|s| s.num_records()).sum()
    }

    /// Total bytes of record data across partitions.
    pub fn data_bytes(&self) -> usize {
        self.streams.iter().map(|s| s.data_bytes()).sum()
    }

    /// Visit every record across partitions, in partition order.
    pub fn for_each_record(&self, mut f: impl FnMut(&[u8])) -> Result<()> {
        for s in &self.streams {
            s.for_each_record(&mut f)?;
        }
        Ok(())
    }

    /// Apply `f` to every partition across `pool`, returning the results in
    /// partition order regardless of scheduling (the merge rule all pooled
    /// kernels rely on).
    pub fn map_pooled<R, F>(&self, pool: &ScopedPool, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &PartitionStream<'a>) -> R + Sync,
    {
        pool.map_items(&self.streams, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_storage::BufferPool;
    use std::path::PathBuf;

    fn temp_space(name: &str, budget: usize) -> (Arc<TempSpace>, Arc<BufferPool>, PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "hique_pipeline_test_{}_{name}.spill",
            std::process::id()
        ));
        let pool = Arc::new(BufferPool::new(budget).unwrap());
        let space = Arc::new(TempSpace::create(Arc::clone(&pool), &path).unwrap());
        (space, pool, path)
    }

    fn packed(records: usize, width: usize) -> Vec<u8> {
        (0..records)
            .flat_map(|r| (0..width).map(move |b| ((r * 37 + b) % 251) as u8))
            .collect()
    }

    #[test]
    fn mem_and_spilled_streams_yield_identical_pages_and_records() {
        let (temp, _pool, path) = temp_space("equiv", 4);
        let ctx = SpillContext::acquire(&temp, 1).expect("space free");
        let buf = packed(700, 24);
        let handle = ctx.spill(&buf, 24).unwrap();
        assert_eq!(ctx.spill_count(), 1);

        let mem = PartitionStream::mem(&buf, 24);
        let spilled = PartitionStream::spilled(&ctx, handle);
        assert_eq!(mem.num_records(), spilled.num_records());
        assert_eq!(mem.data_bytes(), spilled.data_bytes());
        assert!(!mem.is_spilled() && spilled.is_spilled());

        let mut mem_pages: Vec<Vec<u8>> = Vec::new();
        mem.for_each_page(|p| mem_pages.push(p.to_vec())).unwrap();
        let mut sp_pages: Vec<Vec<u8>> = Vec::new();
        spilled
            .for_each_page(|p| sp_pages.push(p.to_vec()))
            .unwrap();
        // Identical page chunking, identical contents: a consumer written
        // against the stream cannot tell the sources apart.
        assert_eq!(mem_pages, sp_pages);

        let mut mem_recs: Vec<Vec<u8>> = Vec::new();
        mem.for_each_record(|r| mem_recs.push(r.to_vec())).unwrap();
        let mut sp_recs: Vec<Vec<u8>> = Vec::new();
        spilled
            .for_each_record(|r| sp_recs.push(r.to_vec()))
            .unwrap();
        assert_eq!(mem_recs, sp_recs);
        assert_eq!(mem_recs.len(), 700);

        assert_eq!(spilled.gather().unwrap(), buf);
        assert_eq!(mem.gather().unwrap(), buf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_keeps_one_page_resident_where_gather_holds_the_range() {
        // A 2-frame pool under a multi-page spilled partition: the streaming
        // consumer's materialized footprint stays at one page, the gathering
        // consumer's equals the whole range — the observable difference the
        // page-at-a-time substrate exists to create.
        let (temp, pool, path) = temp_space("meter", 2);
        let ctx = SpillContext::acquire(&temp, 2).expect("space free");
        let buf = packed(2000, 16);
        let handle = ctx.spill(&buf, 16).unwrap();
        assert!(handle.pages > 4, "partition must dwarf the pool budget");

        let stream = PartitionStream::spilled(&ctx, handle);
        stream.for_each_record(|_| {}).unwrap();
        assert_eq!(ctx.meter().peak(), 1, "streaming holds one page at a time");
        assert!(pool.peak_resident() <= pool.capacity());

        let gathered = stream.gather().unwrap();
        assert_eq!(gathered, buf);
        assert_eq!(
            ctx.meter().peak(),
            handle.pages,
            "gather registers the whole range"
        );
        assert_eq!(ctx.meter().current(), 0, "all guards released");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spill_decision_is_size_only_and_contexts_coexist() {
        let (temp, _pool, path) = temp_space("policy", 4);
        let ctx = SpillContext::acquire(&temp, 64).expect("claim granted");
        let threshold = ctx.threshold_bytes();
        assert_eq!(threshold, 64 * page_data_bytes() / 4);
        assert!(!ctx.should_spill(threshold - 1));
        assert!(ctx.should_spill(threshold));
        // Multi-tenant: a second context claims its own namespace without
        // waiting, and both spill without interfering.
        let other = SpillContext::acquire(&temp, 64).expect("second claim granted");
        assert_eq!(ctx.claim_denied() + other.claim_denied(), 0);
        let buf = packed(100, 16);
        let ha = ctx.spill(&buf, 16).unwrap();
        let hb = other.spill(&buf, 16).unwrap();
        assert_eq!(PartitionStream::spilled(&ctx, ha).gather().unwrap(), buf);
        assert_eq!(PartitionStream::spilled(&other, hb).gather().unwrap(), buf);
        drop(other);
        drop(ctx);
        let again = SpillContext::acquire(&temp, 0).expect("released");
        // Zero budget: everything spills (threshold clamps to 1 byte).
        assert!(again.should_spill(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partition_set_fans_out_in_partition_order() {
        let bufs: Vec<Vec<u8>> = (0..5).map(|p| packed(50 + p * 13, 8)).collect();
        let set = PartitionSet::new(bufs.iter().map(|b| PartitionStream::mem(b, 8)).collect());
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        assert_eq!(
            set.num_records(),
            bufs.iter().map(|b| b.len() / 8).sum::<usize>()
        );
        let mut all = Vec::new();
        set.for_each_record(|r| all.extend_from_slice(r)).unwrap();
        let concat: Vec<u8> = bufs.iter().flatten().copied().collect();
        assert_eq!(all, concat);
        let serial = set.map_pooled(&ScopedPool::serial(), |i, s| (i, s.num_records()));
        for threads in [2, 4, 8] {
            let par = set.map_pooled(&ScopedPool::new(threads), |i, s| (i, s.num_records()));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_context_stops_spilled_pulls_at_a_page_boundary() {
        let (temp, _pool, path) = temp_space("cancel", 4);
        let cancel = CancelToken::new();
        let ctx = SpillContext::acquire_cancellable(&temp, 1, cancel.clone()).expect("space free");
        let buf = packed(2000, 16);
        let handle = ctx.spill(&buf, 16).unwrap();
        assert!(handle.pages > 2);

        let stream = PartitionStream::spilled(&ctx, handle);
        // Cancel after the second page: the stream surfaces a typed
        // Cancelled error instead of finishing (or panicking), and the
        // residency meter unwinds to zero.
        let mut pages_seen = 0usize;
        let err = stream
            .for_each_page(|_| {
                pages_seen += 1;
                if pages_seen == 2 {
                    cancel.cancel();
                }
            })
            .unwrap_err();
        assert!(matches!(err, HiqueError::Cancelled(_)), "{err}");
        assert_eq!(pages_seen, 2, "stops at the next page boundary");
        assert_eq!(ctx.meter().current(), 0);
        assert!(matches!(
            stream.gather().unwrap_err(),
            HiqueError::Cancelled(_)
        ));
        // Memory streams of an un-cancelled context are unaffected.
        let free = SpillContext::acquire(&temp, 1).unwrap();
        assert!(free.cancel().check().is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_partitions_stream_nothing() {
        let (temp, _pool, path) = temp_space("empty", 2);
        let ctx = SpillContext::acquire(&temp, 1).expect("space free");
        let handle = ctx.spill(&[], 8).unwrap();
        let stream = PartitionStream::spilled(&ctx, handle);
        assert_eq!(stream.num_records(), 0);
        let mut n = 0usize;
        stream.for_each_record(|_| n += 1).unwrap();
        assert_eq!(n, 0);
        assert!(stream.gather().unwrap().is_empty());
        let mem = PartitionStream::mem(&[], 8);
        mem.for_each_page(|_| n += 1).unwrap();
        assert_eq!(n, 0);
        std::fs::remove_file(&path).ok();
    }
}
