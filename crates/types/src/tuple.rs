//! Raw NSM record encoding and field access.
//!
//! Records are fixed-length byte slices laid out by a [`Schema`]: each field
//! lives at a fixed offset.  Two access styles are provided:
//!
//! * **Generic access** ([`read_value`] / [`write_value`]) goes through
//!   [`Value`] and a `match` on the data type — this is what the iterator
//!   engine uses and it models the per-field interpretation overhead the
//!   paper attributes to generic query engines.
//! * **Direct access** ([`read_i32_at`], [`read_f64_at`], ...) reads a
//!   primitive at a known offset with no type dispatch — this is what the
//!   holistic generated kernels use (the Rust analogue of the paper's
//!   `int *value = tuple + predicate_offset`).

use crate::datatype::DataType;
use crate::error::{HiqueError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// Read the little-endian `i32` at `offset`.
#[inline(always)]
pub fn read_i32_at(record: &[u8], offset: usize) -> i32 {
    let bytes: [u8; 4] = record[offset..offset + 4].try_into().unwrap();
    i32::from_le_bytes(bytes)
}

/// Read the little-endian `i64` at `offset`.
#[inline(always)]
pub fn read_i64_at(record: &[u8], offset: usize) -> i64 {
    let bytes: [u8; 8] = record[offset..offset + 8].try_into().unwrap();
    i64::from_le_bytes(bytes)
}

/// Read the little-endian `f64` at `offset`.
#[inline(always)]
pub fn read_f64_at(record: &[u8], offset: usize) -> f64 {
    let bytes: [u8; 8] = record[offset..offset + 8].try_into().unwrap();
    f64::from_le_bytes(bytes)
}

/// Borrow the fixed-width byte field at `offset`.
#[inline(always)]
pub fn read_bytes_at(record: &[u8], offset: usize, width: usize) -> &[u8] {
    &record[offset..offset + width]
}

/// Write an `i32` at `offset`.
#[inline(always)]
pub fn write_i32_at(record: &mut [u8], offset: usize, v: i32) {
    record[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
}

/// Write an `i64` at `offset`.
#[inline(always)]
pub fn write_i64_at(record: &mut [u8], offset: usize, v: i64) {
    record[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
}

/// Write an `f64` at `offset`.
#[inline(always)]
pub fn write_f64_at(record: &mut [u8], offset: usize, v: f64) {
    record[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
}

/// Write a fixed-width, space-padded string field at `offset`.
#[inline]
pub fn write_str_at(record: &mut [u8], offset: usize, width: usize, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(width);
    record[offset..offset + n].copy_from_slice(&bytes[..n]);
    for b in &mut record[offset + n..offset + width] {
        *b = b' ';
    }
}

/// Decode the fixed-width string field at `offset`, trimming pad spaces.
#[inline]
pub fn read_str_at(record: &[u8], offset: usize, width: usize) -> &str {
    let raw = &record[offset..offset + width];
    let end = raw.iter().rposition(|&b| b != b' ').map_or(0, |i| i + 1);
    std::str::from_utf8(&raw[..end]).unwrap_or("")
}

/// Read column `idx` of `record` as a [`Value`] (generic, interpreted path).
pub fn read_value(record: &[u8], schema: &Schema, idx: usize) -> Value {
    let off = schema.offset(idx);
    match schema.column(idx).dtype {
        DataType::Int32 => Value::Int32(read_i32_at(record, off)),
        DataType::Int64 => Value::Int64(read_i64_at(record, off)),
        DataType::Float64 => Value::Float64(read_f64_at(record, off)),
        DataType::Date => Value::Date(read_i32_at(record, off)),
        DataType::Char(n) => Value::Str(read_str_at(record, off, n as usize).to_string()),
    }
}

/// Write `value` into column `idx` of `record` (generic, interpreted path).
pub fn write_value(record: &mut [u8], schema: &Schema, idx: usize, value: &Value) -> Result<()> {
    let off = schema.offset(idx);
    let dtype = schema.column(idx).dtype;
    match (dtype, value) {
        (DataType::Int32, Value::Int32(v)) => write_i32_at(record, off, *v),
        (DataType::Int32, Value::Int64(v)) => {
            let narrowed = i32::try_from(*v)
                .map_err(|_| HiqueError::Type(format!("{v} out of range for int column")))?;
            write_i32_at(record, off, narrowed);
        }
        (DataType::Int64, Value::Int64(v)) => write_i64_at(record, off, *v),
        (DataType::Int64, Value::Int32(v)) => write_i64_at(record, off, *v as i64),
        (DataType::Float64, Value::Float64(v)) => write_f64_at(record, off, *v),
        (DataType::Float64, Value::Int32(v)) => write_f64_at(record, off, *v as f64),
        (DataType::Float64, Value::Int64(v)) => write_f64_at(record, off, *v as f64),
        (DataType::Date, Value::Date(v)) => write_i32_at(record, off, *v),
        (DataType::Date, Value::Int32(v)) => write_i32_at(record, off, *v),
        (DataType::Char(n), Value::Str(s)) => write_str_at(record, off, n as usize, s),
        (dtype, value) => {
            return Err(HiqueError::Type(format!(
                "cannot store {value} into {} column '{}'",
                dtype,
                schema.column(idx).name
            )))
        }
    }
    Ok(())
}

/// Encode a full row of values into a freshly allocated record.
pub fn encode_record(schema: &Schema, values: &[Value]) -> Result<Vec<u8>> {
    if values.len() != schema.len() {
        return Err(HiqueError::Type(format!(
            "expected {} values, got {}",
            schema.len(),
            values.len()
        )));
    }
    let mut record = vec![0u8; schema.tuple_size()];
    for (i, v) in values.iter().enumerate() {
        write_value(&mut record, schema, i, v)?;
    }
    Ok(record)
}

/// Decode a full record into its values.
pub fn decode_record(schema: &Schema, record: &[u8]) -> Vec<Value> {
    (0..schema.len())
        .map(|i| read_value(record, schema, i))
        .collect()
}

/// Copy a set of source columns (by index) from `src` into `dst` laid out by
/// `dst_schema` starting at destination column `dst_start`.
///
/// This is the staging projection primitive: the holistic data-staging
/// templates drop unneeded fields by copying only the required byte ranges.
pub fn copy_columns(
    src: &[u8],
    src_schema: &Schema,
    src_cols: &[usize],
    dst: &mut [u8],
    dst_schema: &Schema,
    dst_start: usize,
) {
    for (k, &ci) in src_cols.iter().enumerate() {
        let w = src_schema.column(ci).dtype.width();
        let so = src_schema.offset(ci);
        let d_off = dst_schema.offset(dst_start + k);
        dst[d_off..d_off + w].copy_from_slice(&src[so..so + w]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int64),
            Column::new("c", DataType::Float64),
            Column::new("d", DataType::Char(8)),
            Column::new("e", DataType::Date),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = schema();
        let vals = vec![
            Value::Int32(-7),
            Value::Int64(1 << 40),
            Value::Float64(3.25),
            Value::Str("hi".into()),
            Value::Date(10_000),
        ];
        let rec = encode_record(&s, &vals).unwrap();
        assert_eq!(rec.len(), s.tuple_size());
        assert_eq!(decode_record(&s, &rec), vals);
    }

    #[test]
    fn direct_access_matches_generic_access() {
        let s = schema();
        let rec = encode_record(
            &s,
            &[
                Value::Int32(123),
                Value::Int64(-456),
                Value::Float64(7.5),
                Value::Str("abcdefgh".into()),
                Value::Date(42),
            ],
        )
        .unwrap();
        assert_eq!(read_i32_at(&rec, s.offset(0)), 123);
        assert_eq!(read_i64_at(&rec, s.offset(1)), -456);
        assert_eq!(read_f64_at(&rec, s.offset(2)), 7.5);
        assert_eq!(read_str_at(&rec, s.offset(3), 8), "abcdefgh");
        assert_eq!(read_i32_at(&rec, s.offset(4)), 42);
    }

    #[test]
    fn strings_truncate_and_pad() {
        let s = Schema::new(vec![Column::new("d", DataType::Char(4))]);
        let rec = encode_record(&s, &[Value::Str("toolong".into())]).unwrap();
        assert_eq!(read_str_at(&rec, 0, 4), "tool");
        let rec2 = encode_record(&s, &[Value::Str("a".into())]).unwrap();
        assert_eq!(&rec2, b"a   ");
        assert_eq!(read_str_at(&rec2, 0, 4), "a");
    }

    #[test]
    fn write_value_coerces_numerics() {
        let s = schema();
        let mut rec = vec![0u8; s.tuple_size()];
        write_value(&mut rec, &s, 2, &Value::Int32(9)).unwrap();
        assert_eq!(read_f64_at(&rec, s.offset(2)), 9.0);
        write_value(&mut rec, &s, 1, &Value::Int32(5)).unwrap();
        assert_eq!(read_i64_at(&rec, s.offset(1)), 5);
        assert!(write_value(&mut rec, &s, 0, &Value::Str("x".into())).is_err());
        assert!(write_value(&mut rec, &s, 0, &Value::Int64(i64::MAX)).is_err());
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let s = schema();
        assert!(encode_record(&s, &[Value::Int32(1)]).is_err());
    }

    #[test]
    fn copy_columns_projects_bytes() {
        let src_schema = schema();
        let rec = encode_record(
            &src_schema,
            &[
                Value::Int32(1),
                Value::Int64(2),
                Value::Float64(3.0),
                Value::Str("zz".into()),
                Value::Date(4),
            ],
        )
        .unwrap();
        let dst_schema = src_schema.project(&[4, 0]);
        let mut dst = vec![0u8; dst_schema.tuple_size()];
        copy_columns(&rec, &src_schema, &[4, 0], &mut dst, &dst_schema, 0);
        assert_eq!(
            decode_record(&dst_schema, &dst),
            vec![Value::Date(4), Value::Int32(1)]
        );
    }
}
