//! Per-column value distributions: most-common-value lists and equi-depth
//! histograms.
//!
//! The paper's optimizer picks join orders greedily "with the objective of
//! minimizing the size of intermediate results" (§IV); the quality of that
//! greedy choice is bounded by the quality of the cardinality estimates
//! feeding it.  `ANALYZE` builds one [`ColumnDistribution`] per column:
//!
//! * an **MCV list** — the values whose frequency is above the column
//!   average (all values, when the column has at most [`MCV_LIMIT`]
//!   distinct ones, making equality estimates exact);
//! * an **equi-depth histogram** over the remaining values — up to
//!   [`HISTOGRAM_BUCKETS`] buckets holding roughly equal row counts, each
//!   remembering its value bounds, row count and distinct count.
//!
//! Estimation consults the MCV list first, then the histogram; a column
//! that was never analyzed has no [`ColumnDistribution`] at all, which is
//! the planner's cue to fall back to textbook heuristics.

use crate::value::Value;

/// Comparison kinds the estimator understands, mirroring the SQL dialect's
/// comparison operators (defined here because `hique-sql` depends on this
/// crate, not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// Maximum number of equi-depth buckets per column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Maximum number of most-common-value entries per column.  Columns with at
/// most this many distinct values store *all* of them, making equality and
/// range estimates exact (up to staleness).
pub const MCV_LIMIT: usize = 32;

/// One equi-depth histogram bucket over the non-MCV values of a column.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Smallest value in the bucket (inclusive).
    pub lo: Value,
    /// Largest value in the bucket (inclusive).
    pub hi: Value,
    /// Rows whose value falls in `[lo, hi]` (excluding MCV rows).
    pub rows: usize,
    /// Distinct values in `[lo, hi]` (excluding MCV values).
    pub distinct: usize,
}

/// The collected distribution of one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnDistribution {
    /// Rows observed when the distribution was built.
    pub rows: usize,
    /// Distinct values observed.
    pub distinct: usize,
    /// Most common values with their exact observed row counts, ordered by
    /// descending count (ties broken by ascending value).
    pub mcv: Vec<(Value, usize)>,
    /// Equi-depth buckets over the non-MCV values, in ascending value order.
    pub buckets: Vec<Bucket>,
}

impl ColumnDistribution {
    /// Build the distribution from an unsorted snapshot of the column.
    pub fn build(mut values: Vec<Value>) -> ColumnDistribution {
        values.sort_unstable_by(|a, b| a.total_cmp(b));
        Self::from_sorted(&values)
    }

    /// Build the distribution from an ascending-sorted snapshot.
    pub fn from_sorted(values: &[Value]) -> ColumnDistribution {
        let rows = values.len();
        if rows == 0 {
            return ColumnDistribution::default();
        }
        // Run-length encode the sorted values.
        let mut runs: Vec<(Value, usize)> = Vec::new();
        for v in values {
            match runs.last_mut() {
                Some((rv, count)) if rv.sql_eq(v) => *count += 1,
                _ => runs.push((v.clone(), 1)),
            }
        }
        let distinct = runs.len();

        // MCV selection: with few distinct values keep them all (estimates
        // become exact); otherwise keep the values strictly more frequent
        // than the column average, capped at MCV_LIMIT.
        let mcv: Vec<(Value, usize)> = if distinct <= MCV_LIMIT {
            let mut all = runs.clone();
            all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
            all
        } else {
            let mut candidates: Vec<(Value, usize)> = runs
                .iter()
                .filter(|(_, count)| count * distinct > rows)
                .cloned()
                .collect();
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
            candidates.truncate(MCV_LIMIT);
            candidates
        };

        // Equi-depth buckets over the remaining runs: bucket membership by
        // cumulative row count, so each bucket holds ~rest_rows/B rows while
        // a single run never splits across buckets.
        let rest: Vec<&(Value, usize)> = runs
            .iter()
            .filter(|(v, _)| !mcv.iter().any(|(m, _)| m.sql_eq(v)))
            .collect();
        let rest_rows: usize = rest.iter().map(|(_, c)| c).sum();
        let mut buckets: Vec<Bucket> = Vec::new();
        if !rest.is_empty() {
            let nb = HISTOGRAM_BUCKETS.min(rest.len());
            let mut cum = 0usize;
            for (v, count) in rest {
                let slot = (cum * nb / rest_rows).min(nb - 1);
                let extend_last = buckets.len() == slot + 1;
                if extend_last {
                    let b = buckets.last_mut().expect("slot bucket exists");
                    b.hi = v.clone();
                    b.rows += count;
                    b.distinct += 1;
                } else {
                    buckets.push(Bucket {
                        lo: v.clone(),
                        hi: v.clone(),
                        rows: *count,
                        distinct: 1,
                    });
                }
                cum += count;
            }
        }

        ColumnDistribution {
            rows,
            distinct,
            mcv,
            buckets,
        }
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<&Value> {
        let hist = self.buckets.first().map(|b| &b.lo);
        let mcv = self.mcv.iter().map(|(v, _)| v).min();
        match (hist, mcv) {
            (Some(h), Some(m)) => Some(if h.total_cmp(m).is_le() { h } else { m }),
            (h, m) => h.or(m),
        }
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<&Value> {
        let hist = self.buckets.last().map(|b| &b.hi);
        let mcv = self.mcv.iter().map(|(v, _)| v).max();
        match (hist, mcv) {
            (Some(h), Some(m)) => Some(if h.total_cmp(m).is_ge() { h } else { m }),
            (h, m) => h.or(m),
        }
    }

    /// The guarded selectivity ratio `matched / rows`, clamped to `[0, 1]`.
    /// Every estimator path divides by the observed row count through this
    /// one helper: a zero-row distribution (analyzed-empty column, or stale
    /// statistics whose row count was reset) estimates `0.0` instead of the
    /// `NaN` a bare division would produce.  A NaN selectivity would poison
    /// every downstream cost comparison — `NaN < x` is false for all `x`,
    /// so the greedy join-order search would silently degenerate.
    fn ratio(&self, matched: f64) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (matched / self.rows as f64).clamp(0.0, 1.0)
    }

    /// Fraction of rows equal to `v` (MCV first, then the containing
    /// histogram bucket under a uniform-within-bucket assumption).  An
    /// analyzed-empty column and constants outside the observed value set
    /// both estimate `0.0`.
    pub fn eq_fraction(&self, v: &Value) -> f64 {
        if let Some((_, count)) = self.mcv.iter().find(|(m, _)| m.sql_eq(v)) {
            return self.ratio(*count as f64);
        }
        for b in &self.buckets {
            if b.lo.total_cmp(v).is_le() && b.hi.total_cmp(v).is_ge() {
                return self.ratio(b.rows as f64 / b.distinct.max(1) as f64);
            }
        }
        // Not an MCV and in no bucket: the value was not observed.
        0.0
    }

    /// Fraction of rows strictly below (`inclusive = false`) or at-or-below
    /// (`inclusive = true`) `v`.
    pub fn le_fraction(&self, v: &Value, inclusive: bool) -> f64 {
        let mut matched = 0.0f64;
        for (m, count) in &self.mcv {
            let ord = m.total_cmp(v);
            if ord.is_lt() || (inclusive && ord.is_eq()) {
                matched += *count as f64;
            }
        }
        for b in &self.buckets {
            if b.hi.total_cmp(v).is_lt() || (inclusive && b.hi.total_cmp(v).is_eq()) {
                matched += b.rows as f64;
            } else if b.lo.total_cmp(v).is_le() {
                matched += b.rows as f64 * bucket_fraction_below(b, v, inclusive);
            }
        }
        self.ratio(matched)
    }

    /// Fraction of rows satisfying `column <op> v`, following the same
    /// MCV-then-histogram order for every comparison kind.
    pub fn cmp_fraction(&self, op: CmpKind, v: &Value) -> f64 {
        match op {
            CmpKind::Eq => self.eq_fraction(v),
            CmpKind::NotEq => (1.0 - self.eq_fraction(v)).max(0.0),
            CmpKind::Lt => self.le_fraction(v, false),
            CmpKind::LtEq => self.le_fraction(v, true),
            CmpKind::Gt => (1.0 - self.le_fraction(v, true)).max(0.0),
            CmpKind::GtEq => (1.0 - self.le_fraction(v, false)).max(0.0),
        }
    }

    /// Fraction of rows satisfying **all** of `preds` over this one column.
    ///
    /// Unlike multiplying per-predicate selectivities (the System-R
    /// independence assumption, which is plainly wrong for two predicates
    /// over the same column), this intersects the predicates: MCV entries
    /// are tested exactly, and within each histogram bucket the range
    /// predicates reduce to one interval.  Contradictory conjunctions like
    /// `x < 10 AND x > 20` therefore estimate exactly zero.
    pub fn conjunction_fraction(&self, preds: &[(CmpKind, &Value)]) -> f64 {
        if preds.is_empty() {
            // All rows qualify: 1.0, or 0.0 for a zero-row distribution.
            return self.ratio(self.rows as f64);
        }
        let mut matched = 0.0f64;
        for (v, count) in &self.mcv {
            if preds.iter().all(|&(op, c)| value_matches(v, op, c)) {
                matched += *count as f64;
            }
        }
        for b in &self.buckets {
            matched += b.rows as f64 * bucket_conjunction_fraction(b, preds);
        }
        self.ratio(matched)
    }
}

/// Whether a concrete value satisfies `value <op> constant`.
pub fn value_matches(value: &Value, op: CmpKind, constant: &Value) -> bool {
    let ord = value.total_cmp(constant);
    match op {
        CmpKind::Eq => ord.is_eq(),
        CmpKind::NotEq => ord.is_ne(),
        CmpKind::Lt => ord.is_lt(),
        CmpKind::LtEq => ord.is_le(),
        CmpKind::Gt => ord.is_gt(),
        CmpKind::GtEq => ord.is_ge(),
    }
}

/// Fraction of one bucket's rows satisfying all of `preds`, assuming values
/// spread uniformly across the bucket.  Range predicates intersect into a
/// single `[lo, hi)` window of the bucket's below-fraction space; an
/// equality predicate collapses the window to one point (checked against
/// every other predicate exactly); inequalities scale by the one excluded
/// value when it falls inside the bucket.
fn bucket_conjunction_fraction(b: &Bucket, preds: &[(CmpKind, &Value)]) -> f64 {
    // Equality predicates pin the value: evaluate everything at that point.
    if let Some(&(_, point)) = preds.iter().find(|(op, _)| *op == CmpKind::Eq) {
        let in_bucket = b.lo.total_cmp(point).is_le() && b.hi.total_cmp(point).is_ge();
        let all_hold = preds.iter().all(|&(op, c)| value_matches(point, op, c));
        return if in_bucket && all_hold {
            1.0 / b.distinct.max(1) as f64
        } else {
            0.0
        };
    }
    let mut below_lo = 0.0f64;
    let mut below_hi = 1.0f64;
    let mut scale = 1.0f64;
    for &(op, c) in preds {
        match op {
            CmpKind::Lt => below_hi = below_hi.min(bucket_fraction_below(b, c, false)),
            CmpKind::LtEq => below_hi = below_hi.min(bucket_fraction_below(b, c, true)),
            CmpKind::Gt => below_lo = below_lo.max(bucket_fraction_below(b, c, true)),
            CmpKind::GtEq => below_lo = below_lo.max(bucket_fraction_below(b, c, false)),
            CmpKind::NotEq => {
                if b.lo.total_cmp(c).is_le() && b.hi.total_cmp(c).is_ge() {
                    scale *= 1.0 - 1.0 / b.distinct.max(1) as f64;
                }
            }
            CmpKind::Eq => unreachable!("handled above"),
        }
    }
    (below_hi - below_lo).max(0.0) * scale
}

/// Fraction of a bucket's rows below `v`.  Buckets that don't straddle the
/// constant resolve exactly by comparison (this covers degenerate
/// single-value buckets and every non-interpolable value kind); straddled
/// buckets interpolate linearly between the bounds — integer-like values
/// (ints, dates) count whole points so that e.g. `x < 5` and `x <= 5`
/// differ by exactly one point, and incomparable straddled values
/// (strings) assume half the bucket.
fn bucket_fraction_below(b: &Bucket, v: &Value, inclusive: bool) -> f64 {
    // Bucket entirely below the constant: every row qualifies.
    let hi_ord = b.hi.total_cmp(v);
    if hi_ord.is_lt() || (inclusive && hi_ord.is_eq()) {
        return 1.0;
    }
    // Bucket entirely above (or starting at an excluded point): none do.
    let lo_ord = b.lo.total_cmp(v);
    if lo_ord.is_gt() || (!inclusive && lo_ord.is_eq()) {
        return 0.0;
    }
    let integer_like = |x: &Value| matches!(x, Value::Int32(_) | Value::Int64(_) | Value::Date(_));
    if integer_like(&b.lo) && integer_like(&b.hi) && integer_like(v) {
        let (lo, hi, c) = (
            b.lo.as_i64().unwrap_or(0),
            b.hi.as_i64().unwrap_or(0),
            v.as_i64().unwrap_or(0),
        );
        let width = (hi - lo + 1) as f64;
        let below = (c - lo) + i64::from(inclusive);
        return (below as f64 / width).clamp(0.0, 1.0);
    }
    match (b.lo.as_f64(), b.hi.as_f64(), v.as_f64()) {
        (Ok(lo), Ok(hi), Ok(c)) if hi > lo => ((c - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(values: impl IntoIterator<Item = i32>) -> Vec<Value> {
        values.into_iter().map(Value::Int32).collect()
    }

    #[test]
    fn empty_column_estimates_zero() {
        let d = ColumnDistribution::build(Vec::new());
        assert_eq!(d.rows, 0);
        assert_eq!(d.distinct, 0);
        assert!(d.min().is_none() && d.max().is_none());
        assert_eq!(d.eq_fraction(&Value::Int32(5)), 0.0);
        assert_eq!(d.cmp_fraction(CmpKind::Lt, &Value::Int32(5)), 0.0);
    }

    #[test]
    fn zero_row_distributions_never_divide_to_nan() {
        let c = Value::Int32(5);
        // An analyzed-empty column: every comparison kind stays finite and
        // selects nothing (NotEq is 1 - eq by definition).
        let empty = ColumnDistribution::build(Vec::new());
        for op in [
            CmpKind::Eq,
            CmpKind::NotEq,
            CmpKind::Lt,
            CmpKind::LtEq,
            CmpKind::Gt,
            CmpKind::GtEq,
        ] {
            let f = empty.cmp_fraction(op, &c);
            assert!(f.is_finite(), "{op:?} estimated {f}");
        }
        assert_eq!(empty.conjunction_fraction(&[]), 0.0);
        assert_eq!(empty.conjunction_fraction(&[(CmpKind::Lt, &c)]), 0.0);
        // A stale shape — row count reset to zero but leftover MCV and
        // bucket entries.  Every division routes through the guarded ratio,
        // so the estimate is 0.0, never NaN (a NaN selectivity makes every
        // cost comparison false and degenerates the greedy join order).
        let stale = ColumnDistribution {
            rows: 0,
            distinct: 5,
            mcv: vec![(Value::Int32(5), 3)],
            buckets: vec![Bucket {
                lo: Value::Int32(0),
                hi: Value::Int32(9),
                rows: 4,
                distinct: 4,
            }],
        };
        assert_eq!(stale.eq_fraction(&c), 0.0);
        assert_eq!(stale.le_fraction(&c, true), 0.0);
        assert_eq!(stale.le_fraction(&c, false), 0.0);
        assert_eq!(stale.conjunction_fraction(&[(CmpKind::GtEq, &c)]), 0.0);
        for op in [CmpKind::Eq, CmpKind::Lt, CmpKind::Gt] {
            assert!(stale.cmp_fraction(op, &c).is_finite());
        }
    }

    #[test]
    fn single_value_column_is_one_mcv() {
        let d = ColumnDistribution::build(ints(std::iter::repeat_n(7, 100)));
        assert_eq!(d.distinct, 1);
        assert_eq!(d.mcv, vec![(Value::Int32(7), 100)]);
        assert!(d.buckets.is_empty());
        assert_eq!(d.eq_fraction(&Value::Int32(7)), 1.0);
        assert_eq!(d.eq_fraction(&Value::Int32(8)), 0.0);
        assert_eq!(d.cmp_fraction(CmpKind::LtEq, &Value::Int32(7)), 1.0);
        assert_eq!(d.cmp_fraction(CmpKind::Lt, &Value::Int32(7)), 0.0);
    }

    #[test]
    fn fewer_distinct_than_buckets_keeps_all_values_as_mcvs() {
        // 10 distinct values with different frequencies: every one becomes
        // an MCV and both equality and ranges are exact.
        let mut values = Vec::new();
        for v in 0..10 {
            values.extend(std::iter::repeat_n(v, (v as usize + 1) * 3));
        }
        let total: usize = (1..=10).map(|k| k * 3).sum();
        let d = ColumnDistribution::build(ints(values));
        assert_eq!(d.distinct, 10);
        assert_eq!(d.mcv.len(), 10);
        assert!(d.buckets.is_empty());
        // Most frequent first.
        assert_eq!(d.mcv[0], (Value::Int32(9), 30));
        let sel = d.eq_fraction(&Value::Int32(4));
        assert!((sel - 15.0 / total as f64).abs() < 1e-12);
        let lt = d.cmp_fraction(CmpKind::Lt, &Value::Int32(2));
        assert!((lt - 9.0 / total as f64).abs() < 1e-12);
    }

    #[test]
    fn uniform_wide_column_builds_equi_depth_buckets() {
        let d = ColumnDistribution::build(ints(0..3200));
        assert_eq!(d.distinct, 3200);
        assert!(
            d.mcv.is_empty(),
            "uniform column has no over-represented values"
        );
        assert_eq!(d.buckets.len(), HISTOGRAM_BUCKETS);
        for b in &d.buckets {
            assert_eq!(b.rows, 100);
            assert_eq!(b.distinct, 100);
        }
        assert_eq!(d.min(), Some(&Value::Int32(0)));
        assert_eq!(d.max(), Some(&Value::Int32(3199)));
        // Range estimates track the true fraction closely.
        let lt = d.cmp_fraction(CmpKind::Lt, &Value::Int32(800));
        assert!((lt - 0.25).abs() < 0.01, "{lt}");
        // Lt vs LtEq differ by exactly one point of the domain.
        let lteq = d.cmp_fraction(CmpKind::LtEq, &Value::Int32(800));
        assert!((lteq - lt - 1.0 / 3200.0).abs() < 1e-9);
        // Equality within a bucket assumes uniformity: 1/3200.
        let eq = d.eq_fraction(&Value::Int32(1234));
        assert!((eq - 1.0 / 3200.0).abs() < 1e-6);
        // Outside the observed domain: zero.
        assert_eq!(d.eq_fraction(&Value::Int32(99_999)), 0.0);
        assert_eq!(d.cmp_fraction(CmpKind::Gt, &Value::Int32(99_999)), 0.0);
        assert_eq!(d.cmp_fraction(CmpKind::Lt, &Value::Int32(-5)), 0.0);
    }

    #[test]
    fn zipfian_column_puts_head_values_in_mcv() {
        // Frequency ~ N/rank over 200 distinct values: the head is heavily
        // over-represented and must be captured exactly by the MCV list.
        let mut values = Vec::new();
        for rank in 1..=200usize {
            values.extend(std::iter::repeat_n(rank as i32, 2000 / rank));
        }
        let total = values.len();
        let d = ColumnDistribution::build(ints(values));
        assert_eq!(d.distinct, 200);
        assert!(!d.mcv.is_empty() && d.mcv.len() <= MCV_LIMIT);
        assert_eq!(d.mcv[0], (Value::Int32(1), 2000));
        // The top value's equality estimate is exact.
        assert_eq!(d.eq_fraction(&Value::Int32(1)), 2000.0 / total as f64);
        // Tail values go through the histogram and stay within 3x.
        let est = d.eq_fraction(&Value::Int32(150)) * total as f64;
        let actual = (2000 / 150) as f64;
        assert!(
            est / actual < 3.0 && actual / est < 3.0,
            "est {est} vs {actual}"
        );
        // The whole distribution accounts for every row.
        let mcv_rows: usize = d.mcv.iter().map(|(_, c)| c).sum();
        let bucket_rows: usize = d.buckets.iter().map(|b| b.rows).sum();
        assert_eq!(mcv_rows + bucket_rows, total);
    }

    #[test]
    fn string_columns_support_exact_mcv_and_half_bucket_ranges() {
        let values: Vec<Value> = ["A", "B", "B", "C", "C", "C"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let d = ColumnDistribution::from_sorted(&values);
        assert_eq!(d.eq_fraction(&Value::Str("C".into())), 0.5);
        assert_eq!(d.eq_fraction(&Value::Str("Z".into())), 0.0);
        let lt = d.cmp_fraction(CmpKind::Lt, &Value::Str("C".into()));
        assert!((lt - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_column_conjunctions_intersect_instead_of_multiplying() {
        let d = ColumnDistribution::build(ints(0..1000));
        // A window: 100 <= x < 300 covers ~20% of the rows.
        let (lo, hi) = (Value::Int32(100), Value::Int32(300));
        let frac = d.conjunction_fraction(&[(CmpKind::GtEq, &lo), (CmpKind::Lt, &hi)]);
        assert!((frac - 0.2).abs() < 0.02, "{frac}");
        // Contradictory bounds estimate exactly zero (independence would
        // have said 0.3 * 0.3 = 9%).
        let (lo, hi) = (Value::Int32(700), Value::Int32(300));
        let frac = d.conjunction_fraction(&[(CmpKind::Gt, &lo), (CmpKind::Lt, &hi)]);
        assert_eq!(frac, 0.0);
        // Equality inside / outside a consistent range.
        let (point, bound) = (Value::Int32(500), Value::Int32(400));
        let frac = d.conjunction_fraction(&[(CmpKind::Eq, &point), (CmpKind::Gt, &bound)]);
        assert!((frac - 1.0 / 1000.0).abs() < 1e-6, "{frac}");
        let frac = d.conjunction_fraction(&[(CmpKind::Eq, &point), (CmpKind::Lt, &bound)]);
        assert_eq!(frac, 0.0);
        // MCV-only columns intersect exactly too.
        let small = ColumnDistribution::build(ints((0..10).flat_map(|v| [v; 3])));
        let (a, b) = (Value::Int32(4), Value::Int32(7));
        let frac = small.conjunction_fraction(&[(CmpKind::GtEq, &a), (CmpKind::Lt, &b)]);
        assert_eq!(frac, 9.0 / 30.0);
        // NotEq carves one value out of the window.
        let ne = Value::Int32(5);
        let frac = small.conjunction_fraction(&[
            (CmpKind::GtEq, &a),
            (CmpKind::Lt, &b),
            (CmpKind::NotEq, &ne),
        ]);
        assert_eq!(frac, 6.0 / 30.0);
    }

    #[test]
    fn wide_string_columns_resolve_range_bounds_exactly() {
        // More distinct strings than the MCV limit forces histogram form;
        // buckets entirely below/above a constant must contribute all/none
        // of their rows through both the single-predicate and conjunction
        // paths (only a straddled string bucket falls back to one half).
        let values: Vec<Value> = (0..200)
            .map(|i| Value::Str(format!("name{i:04}")))
            .collect();
        let d = ColumnDistribution::from_sorted(&values);
        assert!(d.mcv.len() < d.distinct, "histogram form expected");
        let below_all = Value::Str("aaaa".into());
        let above_all = Value::Str("zzzz".into());
        assert_eq!(d.cmp_fraction(CmpKind::Lt, &below_all), 0.0);
        assert_eq!(d.conjunction_fraction(&[(CmpKind::Lt, &below_all)]), 0.0);
        assert_eq!(d.cmp_fraction(CmpKind::Lt, &above_all), 1.0);
        assert_eq!(d.conjunction_fraction(&[(CmpKind::Lt, &above_all)]), 1.0);
        assert_eq!(d.conjunction_fraction(&[(CmpKind::GtEq, &above_all)]), 0.0);
        // A mid-domain constant is off by at most one straddled bucket.
        let mid = Value::Str("name0100".into());
        let frac = d.conjunction_fraction(&[(CmpKind::Lt, &mid)]);
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
        // Single-predicate and conjunction paths agree.
        assert_eq!(frac, d.cmp_fraction(CmpKind::Lt, &mid));
    }

    #[test]
    fn degenerate_point_buckets_estimate_exactly() {
        // Even values are over-represented (MCVs), odd values land in the
        // histogram as single-value buckets: lo == hi.  Range estimates must
        // treat those as points, not leak the 0.5 "unknown" fallback.
        let mut values = Vec::new();
        for v in 0..40 {
            let reps = if v % 2 == 0 { 4 } else { 2 };
            values.extend(std::iter::repeat_n(v, reps));
        }
        let d = ColumnDistribution::build(ints(values));
        assert_eq!(d.distinct, 40);
        assert_eq!(d.mcv.len(), 20, "evens are above-average MCVs");
        assert!(d.buckets.iter().all(|b| b.lo == b.hi && b.distinct == 1));
        // <= 10: evens 0,2,..,10 (6x4) + odds 1,3,..,9 (5x2) of 120 rows.
        let c = Value::Int32(10);
        let expected = (6.0 * 4.0 + 5.0 * 2.0) / 120.0;
        assert_eq!(d.cmp_fraction(CmpKind::LtEq, &c), expected);
        assert_eq!(d.conjunction_fraction(&[(CmpKind::LtEq, &c)]), expected);
        // < 10 drops exactly the even point 10.
        let below = (5.0 * 4.0 + 5.0 * 2.0) / 120.0;
        assert_eq!(d.conjunction_fraction(&[(CmpKind::Lt, &c)]), below);
    }

    #[test]
    fn rebuild_after_growth_reflects_new_data() {
        let small = ColumnDistribution::build(ints(0..10));
        assert_eq!(small.distinct, 10);
        assert!(small.buckets.is_empty());
        // Table grows 100x and is re-analyzed: the distribution switches
        // from MCV-only to histogram form and widens its bounds.
        let grown = ColumnDistribution::build(ints(0..1000));
        assert_eq!(grown.distinct, 1000);
        assert!(!grown.buckets.is_empty());
        assert_eq!(grown.max(), Some(&Value::Int32(999)));
        let lt = grown.cmp_fraction(CmpKind::Lt, &Value::Int32(500));
        assert!((lt - 0.5).abs() < 0.01);
    }
}
