//! Materialized rows of [`Value`]s.
//!
//! Rows are the unit of exchange in the interpreted iterator engine and the
//! format in which query results are returned to clients by every engine.
//! A [`Row`] is deliberately a thin wrapper over `Vec<Value>` — the point of
//! the paper is that shuffling these around per tuple is expensive, and the
//! baselines must faithfully pay that cost.

use std::fmt;

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::{decode_record, encode_record};
use crate::value::Value;

/// A materialized, dynamically typed row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wrap a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The row's values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the row carries no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two rows (join output in the iterator engine).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Keep only the listed columns, in the given order.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Encode into a fixed-length NSM record described by `schema`.
    pub fn to_record(&self, schema: &Schema) -> Result<Vec<u8>> {
        encode_record(schema, &self.values)
    }

    /// Decode from a fixed-length NSM record described by `schema`.
    pub fn from_record(schema: &Schema, record: &[u8]) -> Row {
        Row::new(decode_record(schema, record))
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Column;

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Row::new(vec![Value::Str("x".into())]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), &Value::Str("x".into()));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Str("x".into()), Value::Int32(1)]);
        assert!(!p.is_empty());
        assert!(Row::new(vec![]).is_empty());
    }

    #[test]
    fn record_round_trip() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Float64),
        ]);
        let row = Row::new(vec![Value::Int32(9), Value::Float64(0.5)]);
        let rec = row.to_record(&schema).unwrap();
        assert_eq!(Row::from_record(&schema, &rec), row);
    }

    #[test]
    fn display_is_pipe_separated() {
        let row = Row::new(vec![Value::Int32(1), Value::Str("a".into())]);
        assert_eq!(row.to_string(), "1|a");
    }
}
