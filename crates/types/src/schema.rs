//! Schemas with a fixed NSM record layout.
//!
//! A [`Schema`] is an ordered list of typed columns plus the derived byte
//! offsets of each column inside a fixed-length record.  The holistic code
//! generator reads these offsets at *generation* time and bakes them into
//! the emitted kernels as constants — the analogue of the paper's
//! `tuple + predicate_offset` pointer arithmetic.

use std::fmt;

use crate::datatype::DataType;
use crate::error::{HiqueError, Result};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, optionally qualified by the owning table at plan time
    /// (e.g. `lineitem.l_quantity` after joins concatenate schemas).
    pub name: String,
    /// The column's data type (fixed width).
    pub dtype: DataType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }

    /// The unqualified part of the column name (`l_quantity` for
    /// `lineitem.l_quantity`).
    pub fn base_name(&self) -> &str {
        match self.name.rsplit_once('.') {
            Some((_, base)) => base,
            None => &self.name,
        }
    }
}

/// An ordered set of columns with a fixed record layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    /// Byte offset of each column inside the record, aligned to the order of
    /// `columns`.
    offsets: Vec<usize>,
    /// Total fixed record width in bytes.
    tuple_size: usize,
}

impl Schema {
    /// Build a schema from columns; offsets are assigned in declaration
    /// order with no padding (records are byte-packed exactly as in the
    /// paper's 72-byte micro-benchmark tuples).
    pub fn new(columns: Vec<Column>) -> Self {
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0usize;
        for c in &columns {
            offsets.push(off);
            off += c.dtype.width();
        }
        Schema {
            columns,
            offsets,
            tuple_size: off,
        }
    }

    /// Schema with no columns (used as a neutral element when composing).
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Fixed byte width of a record with this schema.
    pub fn tuple_size(&self) -> usize {
        self.tuple_size
    }

    /// Byte offset of column `idx` inside a record.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// All byte offsets, aligned with [`Schema::columns`].
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolve a (possibly qualified) column name to its index.
    ///
    /// Matching follows SQL name resolution for this engine:
    /// an exact match on the stored name wins; otherwise an unqualified
    /// reference matches a qualified column whose base name equals it, and
    /// is ambiguous if several do.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(HiqueError::Analysis(format!("unknown column '{name}'"))),
            _ => Err(HiqueError::Analysis(format!(
                "ambiguous column reference '{name}'"
            ))),
        }
    }

    /// Whether a column with this name can be resolved.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// New schema containing the given column indexes, in the given order.
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema::new(indexes.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// New schema with every column name prefixed by `qualifier.`
    /// (dropping any existing qualification first).
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::new(format!("{qualifier}.{}", c.base_name()), c.dtype))
                .collect(),
        )
    }

    /// Concatenation of two schemas (the record layout of a join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Column names in order, handy for tests and result rendering.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("score", DataType::Float64),
            Column::new("name", DataType::Char(12)),
            Column::new("when", DataType::Date),
        ])
    }

    #[test]
    fn offsets_and_width_are_packed() {
        let s = sample();
        assert_eq!(s.offsets(), &[0, 4, 12, 24]);
        assert_eq!(s.tuple_size(), 28);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Schema::empty().is_empty());
        assert_eq!(Schema::empty().tuple_size(), 0);
    }

    #[test]
    fn name_resolution_qualified_and_unqualified() {
        let q = sample().qualify("t");
        assert_eq!(q.index_of("t.id").unwrap(), 0);
        assert_eq!(q.index_of("id").unwrap(), 0);
        assert_eq!(q.index_of("score").unwrap(), 1);
        assert!(q.index_of("missing").is_err());
        assert!(q.contains("t.name"));
        assert!(!q.contains("nope"));
    }

    #[test]
    fn ambiguous_unqualified_reference_is_rejected() {
        let j = sample().qualify("a").join(&sample().qualify("b"));
        assert!(matches!(j.index_of("id"), Err(HiqueError::Analysis(_))));
        assert_eq!(j.index_of("a.id").unwrap(), 0);
        assert_eq!(j.index_of("b.id").unwrap(), 4);
    }

    #[test]
    fn projection_preserves_order_and_recomputes_offsets() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["name", "id"]);
        assert_eq!(p.offsets(), &[0, 12]);
        assert_eq!(p.tuple_size(), 16);
    }

    #[test]
    fn join_concatenates_layout() {
        let a = sample().qualify("a");
        let b = sample().qualify("b");
        let j = a.join(&b);
        assert_eq!(j.len(), 8);
        assert_eq!(j.tuple_size(), 56);
        assert_eq!(j.offset(4), 28);
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::new(vec![Column::new("x", DataType::Int32)]);
        assert_eq!(s.to_string(), "(x int)");
    }
}
