//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheaply-clonable handle shared between the thread
//! that runs a query and anything that may want to stop it (a wire session's
//! deadline, the server's drain-on-shutdown, a test harness).  Execution
//! engines poll the token at page-granularity points — pin-guard fetches,
//! partition-stream pulls, merge steps, spill-admission waits — by calling
//! [`CancelToken::check`], which returns [`HiqueError::Cancelled`] once the
//! token is cancelled or its deadline has passed.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-operation, so
//! every RAII guard (pins, spill claims, temp files) unwinds through the
//! ordinary `?` error path and the storage layer stays consistent.  The
//! default token ([`CancelToken::disabled`]) never fires and costs one
//! branch per check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{HiqueError, Result};

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation handle for one query execution.
///
/// `Clone` shares the underlying flag; a disabled token (the default) has
/// no state at all and every check is a single `None` test.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A live token that fires only when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that can never fire (the default for unattended execution).
    pub fn disabled() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A live token that also fires once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            })),
        }
    }

    /// Request cancellation.  Idempotent; a disabled token ignores it.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// True once the token is cancelled or past its deadline.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The cooperative check point: `Ok(())` while the query may continue,
    /// [`HiqueError::Cancelled`] once it must stop.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(HiqueError::Cancelled(
                "query cancelled (deadline or explicit cancel)".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Remaining time until the deadline, if one is set and not yet passed.
    pub fn time_left(&self) -> Option<Duration> {
        let deadline = self.inner.as_ref()?.deadline?;
        Some(deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_token_never_fires() {
        let t = CancelToken::disabled();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.time_left().is_none());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.check().is_ok());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(HiqueError::Cancelled(_))));
    }

    #[test]
    fn deadline_fires_after_timeout() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(HiqueError::Cancelled(_))));
    }

    #[test]
    fn deadline_token_reports_time_left() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.time_left().unwrap() > Duration::from_secs(3000));
        assert!(t.check().is_ok());
    }
}
