//! Query results and result finalization helpers shared by all engines.
//!
//! Every engine (iterator, DSM, holistic) returns the same [`QueryResult`]
//! structure so that integration tests can assert cross-engine equivalence
//! and the benchmark harness can report identical row counts next to the
//! timing and counter columns.

use std::time::Duration;

use crate::row::Row;
use crate::schema::Schema;
use crate::stats::ExecStats;

/// Wall-clock time spent in each named execution phase.
///
/// The paper breaks execution time into staging/join/aggregation work when
/// discussing Figures 5 and 6; engines record comparable phases here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimings {
    /// An empty set of phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase duration (phases with the same name accumulate).
    pub fn record(&mut self, name: &str, d: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(n, _)| n == name) {
            entry.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// All recorded phases in insertion order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Duration of a named phase, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

/// The materialized result of a query plus execution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Result schema.
    pub schema: Schema,
    /// Result rows (already ordered and limited).
    pub rows: Vec<Row>,
    /// Software execution counters.
    pub stats: ExecStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl QueryResult {
    /// Create a result with empty stats/timings.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        QueryResult {
            schema,
            rows,
            stats: ExecStats::new(),
            timings: PhaseTimings::new(),
        }
    }

    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the result as pipe-separated text (header + rows), used by the
    /// examples and by golden tests.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.names().join("|"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }
}

/// Compare two rows under (column index, ascending) keys, major key first
/// — the one comparator behind [`sort_rows`] and every chunk-sort/merge
/// built on it, so parallel merges can never diverge from the serial sort
/// rule.
pub fn cmp_rows(a: &Row, b: &Row, keys: &[(usize, bool)]) -> std::cmp::Ordering {
    for &(col, asc) in keys {
        let ord = a.get(col).total_cmp(b.get(col));
        let ord = if asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort rows by the given (column index, ascending) keys, major key first.
///
/// The sort is stable so that rows equal under the keys keep their input
/// order, which keeps cross-engine comparisons deterministic.
pub fn sort_rows(rows: &mut [Row], keys: &[(usize, bool)]) {
    if keys.is_empty() {
        return;
    }
    rows.sort_by(|a, b| cmp_rows(a, b, keys));
}

/// Apply ORDER BY keys and LIMIT to a result row set in place.
pub fn finalize_rows(rows: &mut Vec<Row>, order_by: &[(usize, bool)], limit: Option<u64>) {
    sort_rows(rows, order_by);
    if let Some(l) = limit {
        rows.truncate(l as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Column;
    use crate::value::Value;

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int32(2), Value::Str("b".into())]),
            Row::new(vec![Value::Int32(1), Value::Str("c".into())]),
            Row::new(vec![Value::Int32(1), Value::Str("a".into())]),
        ]
    }

    #[test]
    fn sort_rows_multi_key() {
        let mut r = rows();
        sort_rows(&mut r, &[(0, true), (1, true)]);
        assert_eq!(r[0].get(1), &Value::Str("a".into()));
        assert_eq!(r[2].get(0), &Value::Int32(2));
        let mut r = rows();
        sort_rows(&mut r, &[(0, false)]);
        assert_eq!(r[0].get(0), &Value::Int32(2));
    }

    #[test]
    fn finalize_applies_limit() {
        let mut r = rows();
        finalize_rows(&mut r, &[(1, true)], Some(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].get(1), &Value::Str("a".into()));
        let mut r2 = rows();
        finalize_rows(&mut r2, &[], None);
        assert_eq!(r2.len(), 3);
    }

    #[test]
    fn timings_accumulate_by_name() {
        let mut t = PhaseTimings::new();
        t.record("staging", Duration::from_millis(5));
        t.record("join", Duration::from_millis(10));
        t.record("staging", Duration::from_millis(7));
        assert_eq!(t.get("staging"), Some(Duration::from_millis(12)));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.total(), Duration::from_millis(22));
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn result_text_rendering() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("s", DataType::Char(1)),
        ]);
        let res = QueryResult::new(schema, rows());
        assert_eq!(res.num_rows(), 3);
        let text = res.to_text();
        assert!(text.starts_with("k|s\n"));
        assert!(text.contains("2|b\n"));
    }
}
