//! Software execution counters.
//!
//! The paper explains its response-time results with hardware performance
//! events (retired instructions, function calls, D1-cache accesses, CPI,
//! prefetcher efficiency) collected with OProfile.  Portable access to those
//! counters is not available here, so every engine in this repository is
//! instrumented with *software* counters that capture the same explanatory
//! quantities at the engine level:
//!
//! | paper metric                | ExecStats analogue                         |
//! |-----------------------------|--------------------------------------------|
//! | function calls              | `function_calls` (iterator/dispatch calls) |
//! | retired instructions        | `tuples_processed`, `comparisons`, `hash_ops` (work proxy) |
//! | D1-cache accesses           | `bytes_touched`                            |
//! | memory stalls from staging  | `bytes_materialized`, `partition_passes`, `sort_passes` |
//!
//! The absolute numbers are not comparable with the paper's; their *ratios
//! across engine configurations* are what the reproduction tracks.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while executing one query (or one operator).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic-dispatch / iterator-interface calls (`open`/`next`/`close`,
    /// per-field accessor calls, comparator callbacks).  The holistic
    /// engine's generated kernels keep this near zero by construction.
    pub function_calls: u64,
    /// Tuples that entered any operator.
    pub tuples_processed: u64,
    /// Bytes of record data read or written by operators.
    pub bytes_touched: u64,
    /// Predicate / key comparisons evaluated.
    pub comparisons: u64,
    /// Hash computations (partitioning, hash joins, hash aggregation).
    pub hash_ops: u64,
    /// Bytes written into materialized intermediate results (staging areas,
    /// partitions, sort buffers, temporary tables).
    pub bytes_materialized: u64,
    /// Number of partitioning passes performed while staging inputs.
    pub partition_passes: u64,
    /// Number of sort passes (quicksort runs + merges) while staging.
    pub sort_passes: u64,
    /// Result rows produced.
    pub rows_out: u64,
}

impl ExecStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` iterator-style function calls.
    #[inline(always)]
    pub fn add_calls(&mut self, n: u64) {
        self.function_calls += n;
    }

    /// Record one processed tuple of `bytes` width.
    #[inline(always)]
    pub fn add_tuple(&mut self, bytes: usize) {
        self.tuples_processed += 1;
        self.bytes_touched += bytes as u64;
    }

    /// Record `n` comparisons.
    #[inline(always)]
    pub fn add_comparisons(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Record `n` hash computations.
    #[inline(always)]
    pub fn add_hashes(&mut self, n: u64) {
        self.hash_ops += n;
    }

    /// Record materialization of `bytes` into an intermediate.
    #[inline(always)]
    pub fn add_materialized(&mut self, bytes: usize) {
        self.bytes_materialized += bytes as u64;
    }

    /// Merge another counter set into this one.
    ///
    /// This is the combine step of partition-parallel execution: every
    /// worker accumulates into a fresh `ExecStats` and the executor merges
    /// the per-worker sets in deterministic task order.  All counters are
    /// plain sums, so for the same query the merged counters are *exactly*
    /// the serial engine's — kernels maintain this by counting real work
    /// per record and computing estimated quantities (e.g. sort-cost
    /// formulas) from totals rather than per-chunk.
    pub fn merge(&mut self, other: &ExecStats) {
        *self += *other;
    }
}

impl std::iter::Sum for ExecStats {
    fn sum<I: Iterator<Item = ExecStats>>(iter: I) -> Self {
        iter.fold(ExecStats::new(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: Self) {
        self.function_calls += rhs.function_calls;
        self.tuples_processed += rhs.tuples_processed;
        self.bytes_touched += rhs.bytes_touched;
        self.comparisons += rhs.comparisons;
        self.hash_ops += rhs.hash_ops;
        self.bytes_materialized += rhs.bytes_materialized;
        self.partition_passes += rhs.partition_passes;
        self.sort_passes += rhs.sort_passes;
        self.rows_out += rhs.rows_out;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} tuples={} bytes={} cmps={} hashes={} mat_bytes={} part_passes={} sort_passes={} rows_out={}",
            self.function_calls,
            self.tuples_processed,
            self.bytes_touched,
            self.comparisons,
            self.hash_ops,
            self.bytes_materialized,
            self.partition_passes,
            self.sort_passes,
            self.rows_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = ExecStats::new();
        s.add_calls(3);
        s.add_tuple(72);
        s.add_tuple(72);
        s.add_comparisons(5);
        s.add_hashes(2);
        s.add_materialized(144);
        assert_eq!(s.function_calls, 3);
        assert_eq!(s.tuples_processed, 2);
        assert_eq!(s.bytes_touched, 144);
        assert_eq!(s.comparisons, 5);
        assert_eq!(s.hash_ops, 2);
        assert_eq!(s.bytes_materialized, 144);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStats::new();
        a.add_calls(1);
        a.add_tuple(10);
        let mut b = ExecStats::new();
        b.add_calls(2);
        b.add_tuple(20);
        b.rows_out = 7;
        a.merge(&b);
        assert_eq!(a.function_calls, 3);
        assert_eq!(a.tuples_processed, 2);
        assert_eq!(a.bytes_touched, 30);
        assert_eq!(a.rows_out, 7);
    }

    #[test]
    fn sum_folds_worker_counter_sets() {
        let workers: Vec<ExecStats> = (1..=4)
            .map(|i| {
                let mut s = ExecStats::new();
                s.add_tuple(10 * i);
                s.add_comparisons(i as u64);
                s
            })
            .collect();
        let total: ExecStats = workers.into_iter().sum();
        assert_eq!(total.tuples_processed, 4);
        assert_eq!(total.bytes_touched, 100);
        assert_eq!(total.comparisons, 10);
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = ExecStats::new();
        let out = s.to_string();
        for key in [
            "calls=",
            "tuples=",
            "bytes=",
            "cmps=",
            "hashes=",
            "mat_bytes=",
            "part_passes=",
            "sort_passes=",
            "rows_out=",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }
}
