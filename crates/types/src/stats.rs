//! Software execution counters.
//!
//! The paper explains its response-time results with hardware performance
//! events (retired instructions, function calls, D1-cache accesses, CPI,
//! prefetcher efficiency) collected with OProfile.  Portable access to those
//! counters is not available here, so every engine in this repository is
//! instrumented with *software* counters that capture the same explanatory
//! quantities at the engine level:
//!
//! | paper metric                | ExecStats analogue                         |
//! |-----------------------------|--------------------------------------------|
//! | function calls              | `function_calls` (iterator/dispatch calls) |
//! | retired instructions        | `tuples_processed`, `comparisons`, `hash_ops` (work proxy) |
//! | D1-cache accesses           | `bytes_touched`                            |
//! | memory stalls from staging  | `bytes_materialized`, `partition_passes`, `sort_passes` |
//!
//! The absolute numbers are not comparable with the paper's; their *ratios
//! across engine configurations* are what the reproduction tracks.

use std::fmt;
use std::ops::AddAssign;

/// Buffer-pool and disk I/O counters of one query execution.
///
/// Filled from the buffer-pool counter delta when the catalog runs in paged
/// mode ([`crate::ExecStats::io`]); all-zero for memory-resident heaps.
/// Unlike the work counters, these depend on cross-worker interleaving when
/// `threads > 1` shares one LRU pool, so equality assertions between serial
/// and parallel runs hold only on memory-resident catalogs (where they are
/// zero on both sides).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served from a resident buffer-pool frame.
    pub pool_hits: u64,
    /// Page requests that had to go to disk.
    pub pool_misses: u64,
    /// Frames evicted from the pool to make room.
    pub pool_evictions: u64,
    /// Whole pages read from disk (misses plus pool-bypass reads).
    pub pages_read: u64,
    /// Whole pages written to disk (eviction write-back, flush, spill).
    pub pages_written: u64,
}

impl IoStats {
    /// True when no buffer-pool or disk traffic was recorded.
    pub fn is_zero(&self) -> bool {
        *self == IoStats::default()
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, rhs: Self) {
        self.pool_hits += rhs.pool_hits;
        self.pool_misses += rhs.pool_misses;
        self.pool_evictions += rhs.pool_evictions;
        self.pages_read += rhs.pages_read;
        self.pages_written += rhs.pages_written;
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool_hits={} pool_misses={} pool_evictions={} pages_read={} pages_written={}",
            self.pool_hits,
            self.pool_misses,
            self.pool_evictions,
            self.pages_read,
            self.pages_written
        )
    }
}

/// Counters accumulated while executing one query (or one operator).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic-dispatch / iterator-interface calls (`open`/`next`/`close`,
    /// per-field accessor calls, comparator callbacks).  The holistic
    /// engine's generated kernels keep this near zero by construction.
    pub function_calls: u64,
    /// Tuples that entered any operator.
    pub tuples_processed: u64,
    /// Bytes of record data read or written by operators.
    pub bytes_touched: u64,
    /// Predicate / key comparisons evaluated.
    pub comparisons: u64,
    /// Hash computations (partitioning, hash joins, hash aggregation).
    pub hash_ops: u64,
    /// Bytes written into materialized intermediate results (staging areas,
    /// partitions, sort buffers, temporary tables).
    pub bytes_materialized: u64,
    /// Number of partitioning passes performed while staging inputs.
    pub partition_passes: u64,
    /// Number of sort passes (quicksort runs + merges) while staging.
    pub sort_passes: u64,
    /// Result rows produced.
    pub rows_out: u64,
    /// Temporaries (staged inputs, join intermediates, sort runs, alignment
    /// vectors) written through the buffer pool under a memory budget.  The
    /// spill decision is size-only, so this count is identical for every
    /// thread count.
    pub spilled_temporaries: u64,
    /// 1 when this execution's spill-namespace claim was initially denied
    /// by admission control and had to queue for a slot (0 otherwise; sums
    /// across merged executions).  A denied claim *waits* — it never runs
    /// unbounded without spill capability — and this counter is how the
    /// wait stays observable instead of silent.
    pub spill_claim_denied: u64,
    /// High-water mark of resident buffer-pool frames *during this
    /// execution* (the executor opens an epoch-tagged peak window on the
    /// pool at start and closes it at the end; zero for memory-resident
    /// catalogs).  Always ≤ `memory_budget_pages`.
    pub peak_resident_pages: u64,
    /// High-water mark of spilled pages a consumer held materialized
    /// *outside* the pool at once (the pipeline `ResidencyMeter`):
    /// streaming consumers hold one page per pin, gathering consumers a
    /// whole partition/relation.  This is the counter that proves
    /// page-at-a-time reload stays small where whole-partition reload
    /// could not — the pool capacity bounds `peak_resident_pages` by
    /// construction, but nothing bounds this one except the consumption
    /// style.
    pub spill_consumer_peak_pages: u64,
    /// 1 when this execution was stopped by cooperative cancellation
    /// (deadline, explicit cancel, shutdown drain) before completing; sums
    /// across merged executions, so a server-level roll-up counts cancelled
    /// statements.  A successful run always reports 0.
    pub cancelled: u64,
    /// Storage faults injected by an installed
    /// `FaultPlan` while this execution ran (failed/short reads, failed
    /// writes, disk-full spill allocations).  Zero outside chaos testing.
    pub faults_injected: u64,
    /// Tuple batches dispatched by the bytecode VM's vectorized tier
    /// (one per heap page staged, per pinned spill page consumed, or per
    /// in-memory chunk of at most the batch width).  Zero when the scalar
    /// row-at-a-time interpreter ran — which tier executed is visible in
    /// EXPLAIN through this counter.
    pub vm_batches: u64,
    /// Fused superinstruction dispatches executed by the vectorized tier
    /// (one per fused step per batch, not per tuple).
    pub vm_fused_ops: u64,
    /// Buffer-pool and disk I/O of the execution (zero for memory-resident
    /// catalogs; see [`IoStats`] for the interleaving caveat under
    /// `threads > 1`).
    pub io: IoStats,
}

impl ExecStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` iterator-style function calls.
    #[inline(always)]
    pub fn add_calls(&mut self, n: u64) {
        self.function_calls += n;
    }

    /// Record one processed tuple of `bytes` width.
    #[inline(always)]
    pub fn add_tuple(&mut self, bytes: usize) {
        self.tuples_processed += 1;
        self.bytes_touched += bytes as u64;
    }

    /// Record `n` comparisons.
    #[inline(always)]
    pub fn add_comparisons(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Record `n` hash computations.
    #[inline(always)]
    pub fn add_hashes(&mut self, n: u64) {
        self.hash_ops += n;
    }

    /// Record materialization of `bytes` into an intermediate.
    #[inline(always)]
    pub fn add_materialized(&mut self, bytes: usize) {
        self.bytes_materialized += bytes as u64;
    }

    /// Merge another counter set into this one.
    ///
    /// This is the combine step of partition-parallel execution: every
    /// worker accumulates into a fresh `ExecStats` and the executor merges
    /// the per-worker sets in deterministic task order.  All counters are
    /// plain sums, so for the same query the merged counters are *exactly*
    /// the serial engine's — kernels maintain this by counting real work
    /// per record and computing estimated quantities (e.g. sort-cost
    /// formulas) from totals rather than per-chunk.
    pub fn merge(&mut self, other: &ExecStats) {
        *self += *other;
    }
}

impl std::iter::Sum for ExecStats {
    fn sum<I: Iterator<Item = ExecStats>>(iter: I) -> Self {
        iter.fold(ExecStats::new(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: Self) {
        self.function_calls += rhs.function_calls;
        self.tuples_processed += rhs.tuples_processed;
        self.bytes_touched += rhs.bytes_touched;
        self.comparisons += rhs.comparisons;
        self.hash_ops += rhs.hash_ops;
        self.bytes_materialized += rhs.bytes_materialized;
        self.partition_passes += rhs.partition_passes;
        self.sort_passes += rhs.sort_passes;
        self.rows_out += rhs.rows_out;
        self.spilled_temporaries += rhs.spilled_temporaries;
        self.spill_claim_denied += rhs.spill_claim_denied;
        self.cancelled += rhs.cancelled;
        self.faults_injected += rhs.faults_injected;
        self.vm_batches += rhs.vm_batches;
        self.vm_fused_ops += rhs.vm_fused_ops;
        // High-water marks combine by max, not by sum: merging worker
        // counter sets must not inflate peak residency.
        self.peak_resident_pages = self.peak_resident_pages.max(rhs.peak_resident_pages);
        self.spill_consumer_peak_pages = self
            .spill_consumer_peak_pages
            .max(rhs.spill_consumer_peak_pages);
        self.io += rhs.io;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} tuples={} bytes={} cmps={} hashes={} mat_bytes={} part_passes={} sort_passes={} rows_out={} spilled={} spill_claim_denied={} peak_resident={} spill_consumer_peak={} cancelled={} faults_injected={} vm_batches={} vm_fused_ops={} {}",
            self.function_calls,
            self.tuples_processed,
            self.bytes_touched,
            self.comparisons,
            self.hash_ops,
            self.bytes_materialized,
            self.partition_passes,
            self.sort_passes,
            self.rows_out,
            self.spilled_temporaries,
            self.spill_claim_denied,
            self.peak_resident_pages,
            self.spill_consumer_peak_pages,
            self.cancelled,
            self.faults_injected,
            self.vm_batches,
            self.vm_fused_ops,
            self.io
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = ExecStats::new();
        s.add_calls(3);
        s.add_tuple(72);
        s.add_tuple(72);
        s.add_comparisons(5);
        s.add_hashes(2);
        s.add_materialized(144);
        assert_eq!(s.function_calls, 3);
        assert_eq!(s.tuples_processed, 2);
        assert_eq!(s.bytes_touched, 144);
        assert_eq!(s.comparisons, 5);
        assert_eq!(s.hash_ops, 2);
        assert_eq!(s.bytes_materialized, 144);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStats::new();
        a.add_calls(1);
        a.add_tuple(10);
        let mut b = ExecStats::new();
        b.add_calls(2);
        b.add_tuple(20);
        b.rows_out = 7;
        a.merge(&b);
        assert_eq!(a.function_calls, 3);
        assert_eq!(a.tuples_processed, 2);
        assert_eq!(a.bytes_touched, 30);
        assert_eq!(a.rows_out, 7);
    }

    #[test]
    fn sum_folds_worker_counter_sets() {
        let workers: Vec<ExecStats> = (1..=4)
            .map(|i| {
                let mut s = ExecStats::new();
                s.add_tuple(10 * i);
                s.add_comparisons(i as u64);
                s
            })
            .collect();
        let total: ExecStats = workers.into_iter().sum();
        assert_eq!(total.tuples_processed, 4);
        assert_eq!(total.bytes_touched, 100);
        assert_eq!(total.comparisons, 10);
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = ExecStats::new();
        let out = s.to_string();
        for key in [
            "calls=",
            "tuples=",
            "bytes=",
            "cmps=",
            "hashes=",
            "mat_bytes=",
            "part_passes=",
            "sort_passes=",
            "rows_out=",
            "spilled=",
            "spill_claim_denied=",
            "peak_resident=",
            "spill_consumer_peak=",
            "cancelled=",
            "faults_injected=",
            "vm_batches=",
            "vm_fused_ops=",
            "pool_hits=",
            "pool_misses=",
            "pool_evictions=",
            "pages_read=",
            "pages_written=",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }

    #[test]
    fn spill_counters_merge_sum_and_peak_merges_by_max() {
        let mut a = ExecStats::new();
        a.spilled_temporaries = 2;
        a.spill_claim_denied = 1;
        a.peak_resident_pages = 40;
        a.spill_consumer_peak_pages = 7;
        let mut b = ExecStats::new();
        b.spilled_temporaries = 3;
        b.spill_claim_denied = 4;
        b.peak_resident_pages = 25;
        b.spill_consumer_peak_pages = 12;
        a.merge(&b);
        // Event counters accumulate across workers.
        assert_eq!(a.spilled_temporaries, 5);
        assert_eq!(a.spill_claim_denied, 5);
        // High-water marks are maxes, not sums: two workers sharing one
        // pool (or one spill consumer window) do not double its residency.
        assert_eq!(a.peak_resident_pages, 40);
        assert_eq!(a.spill_consumer_peak_pages, 12);
        // Merging in the other direction agrees (max is symmetric even
        // when the larger peak sits on the right-hand side).
        let mut c = ExecStats::new();
        c.spill_consumer_peak_pages = 3;
        c.peak_resident_pages = 10;
        c.merge(&a);
        assert_eq!(c.peak_resident_pages, 40);
        assert_eq!(c.spill_consumer_peak_pages, 12);
    }

    #[test]
    fn io_counters_merge_and_compare() {
        let mut a = ExecStats::new();
        a.io.pool_hits = 3;
        a.io.pages_written = 1;
        let mut b = ExecStats::new();
        b.io.pool_hits = 2;
        b.io.pool_misses = 5;
        b.io.pool_evictions = 4;
        b.io.pages_read = 5;
        a.merge(&b);
        assert_eq!(a.io.pool_hits, 5);
        assert_eq!(a.io.pool_misses, 5);
        assert_eq!(a.io.pool_evictions, 4);
        assert_eq!(a.io.pages_read, 5);
        assert_eq!(a.io.pages_written, 1);
        assert!(!a.io.is_zero());
        assert!(ExecStats::new().io.is_zero());
    }
}
