//! Runtime values.
//!
//! [`Value`] is the boxed, dynamically-typed representation used by the
//! *interpreted* parts of the system: the SQL front-end (literals), the
//! iterator engine (the paper's baseline, which pays for this genericity),
//! the optimizer (statistics and constants) and query results.  The holistic
//! engine's generated kernels never manipulate `Value`s in their hot loops —
//! they read primitives straight out of NSM records — which is exactly the
//! contrast the paper measures.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::datatype::DataType;
use crate::error::{HiqueError, Result};

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// Double-precision float.
    Float64(f64),
    /// Days since the Unix epoch.
    Date(i32),
    /// Character string (logically `CHAR(n)`; trailing pad spaces trimmed).
    Str(String),
}

impl Value {
    /// The data type this value naturally carries.
    ///
    /// `Str` maps to a `Char` whose width is the string's byte length; the
    /// schema's declared width wins when encoding into a record.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int32(_) => DataType::Int32,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Date(_) => DataType::Date,
            Value::Str(s) => DataType::Char(s.len().min(u16::MAX as usize) as u16),
        }
    }

    /// Interpret the value as `f64` for aggregate arithmetic.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int32(v) => Ok(*v as f64),
            Value::Int64(v) => Ok(*v as f64),
            Value::Float64(v) => Ok(*v),
            Value::Date(v) => Ok(*v as f64),
            Value::Str(s) => Err(HiqueError::Type(format!(
                "cannot use string '{s}' in numeric context"
            ))),
        }
    }

    /// Interpret the value as `i64`, truncating floats.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int32(v) => Ok(*v as i64),
            Value::Int64(v) => Ok(*v),
            Value::Float64(v) => Ok(*v as i64),
            Value::Date(v) => Ok(*v as i64),
            Value::Str(s) => Err(HiqueError::Type(format!(
                "cannot use string '{s}' in integer context"
            ))),
        }
    }

    /// Borrow the string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Coerce this value to the given type, used when binding literals to
    /// column types during semantic analysis.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        let out = match (self, ty) {
            (Value::Int32(v), DataType::Int32) => Value::Int32(*v),
            (Value::Int32(v), DataType::Int64) => Value::Int64(*v as i64),
            (Value::Int32(v), DataType::Float64) => Value::Float64(*v as f64),
            (Value::Int32(v), DataType::Date) => Value::Date(*v),
            (Value::Int64(v), DataType::Int64) => Value::Int64(*v),
            (Value::Int64(v), DataType::Int32) => {
                let narrowed = i32::try_from(*v)
                    .map_err(|_| HiqueError::Type(format!("integer {v} out of range for int")))?;
                Value::Int32(narrowed)
            }
            (Value::Int64(v), DataType::Float64) => Value::Float64(*v as f64),
            (Value::Float64(v), DataType::Float64) => Value::Float64(*v),
            (Value::Date(v), DataType::Date) => Value::Date(*v),
            (Value::Date(v), DataType::Int32) => Value::Int32(*v),
            (Value::Str(s), DataType::Char(_)) => Value::Str(s.clone()),
            (Value::Str(s), DataType::Date) => Value::Date(parse_date(s)?),
            (v, ty) => return Err(HiqueError::Type(format!("cannot coerce {v} to {ty}"))),
        };
        Ok(out)
    }

    /// Total-order comparison across compatible value kinds.
    ///
    /// Numeric kinds compare numerically regardless of width; strings
    /// compare lexicographically; comparing a string with a number is a
    /// type error at analysis time and panics here only in debug builds.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float64(a), Value::Float64(b)) => a.total_cmp(b),
            (a, b) => {
                // Mixed / integer comparison through f64 is exact for the
                // integer ranges used by the workloads (< 2^53).
                let fa = a.as_f64().unwrap_or(f64::NEG_INFINITY);
                let fb = b.as_f64().unwrap_or(f64::NEG_INFINITY);
                fa.total_cmp(&fb)
            }
        }
    }

    /// Equality as used by equi-join and grouping logic.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

/// Parse `YYYY-MM-DD` into days since 1970-01-01 (proleptic Gregorian).
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(HiqueError::Type(format!("invalid date literal '{s}'")));
    }
    let year: i32 = parts[0]
        .parse()
        .map_err(|_| HiqueError::Type(format!("invalid year in date '{s}'")))?;
    let month: i32 = parts[1]
        .parse()
        .map_err(|_| HiqueError::Type(format!("invalid month in date '{s}'")))?;
    let day: i32 = parts[2]
        .parse()
        .map_err(|_| HiqueError::Type(format!("invalid day in date '{s}'")))?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(HiqueError::Type(format!("date out of range '{s}'")));
    }
    Ok(days_from_civil(year, month, day))
}

/// Format days-since-epoch back into `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Howard Hinnant's `days_from_civil` algorithm (public domain).
pub fn days_from_civil(y: i32, m: i32, d: i32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, i32, i32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = (mp + 2) % 12 + 1;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Hash numerics through their f64 bit pattern so that values that
            // compare equal across widths hash identically.
            Value::Int32(v) => (*v as f64).to_bits().hash(state),
            Value::Int64(v) => (*v as f64).to_bits().hash(state),
            Value::Date(v) => (*v as f64).to_bits().hash(state),
            Value::Float64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v:.4}"),
            Value::Date(v) => write!(f, "{}", format_date(*v)),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_spans_widths() {
        assert!(Value::Int32(5).sql_eq(&Value::Int64(5)));
        assert!(Value::Int32(5) < Value::Float64(5.5));
        assert!(Value::Int64(10) > Value::Int32(2));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert!(Value::Str("BUILDING".into()) < Value::Str("HOUSEHOLD".into()));
        assert!(Value::Str("A".into()).sql_eq(&Value::Str("A".into())));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int32(7).coerce_to(DataType::Int64).unwrap(),
            Value::Int64(7)
        );
        assert_eq!(
            Value::Int64(7).coerce_to(DataType::Int32).unwrap(),
            Value::Int32(7)
        );
        assert!(Value::Int64(i64::MAX).coerce_to(DataType::Int32).is_err());
        assert_eq!(
            Value::Int32(3).coerce_to(DataType::Float64).unwrap(),
            Value::Float64(3.0)
        );
        assert!(Value::Str("x".into()).coerce_to(DataType::Int32).is_err());
    }

    #[test]
    fn date_round_trip() {
        for (y, m, d) in [(1970, 1, 1), (1992, 2, 29), (1998, 12, 1), (2026, 6, 14)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(
            parse_date("1995-03-15").unwrap(),
            days_from_civil(1995, 3, 15)
        );
        assert_eq!(format_date(parse_date("1998-12-01").unwrap()), "1998-12-01");
    }

    #[test]
    fn date_parse_errors() {
        assert!(parse_date("1995/03/15").is_err());
        assert!(parse_date("1995-13-15").is_err());
        assert!(parse_date("not-a-date").is_err());
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::Int32(4).as_f64().unwrap(), 4.0);
        assert_eq!(Value::Float64(2.5).as_i64().unwrap(), 2);
        assert!(Value::Str("a".into()).as_f64().is_err());
        assert_eq!(Value::Str("abc".into()).as_str(), Some("abc"));
        assert_eq!(Value::Int32(1).as_str(), None);
    }

    #[test]
    fn hash_consistent_with_eq_across_widths() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int32(42)), h(&Value::Int64(42)));
        assert_eq!(h(&Value::Int32(42)), h(&Value::Float64(42.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int32(3).to_string(), "3");
        assert_eq!(Value::Float64(1.5).to_string(), "1.5000");
        assert_eq!(Value::Str("ok".into()).to_string(), "ok");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }
}
