//! # hique-types
//!
//! Fundamental data model for the HIQUE query engine reproduction:
//! SQL data types, runtime values, schemas with fixed NSM record layout,
//! raw tuple encoding/decoding, and the software execution counters that
//! substitute for the paper's hardware performance events.
//!
//! The paper ("Generating code for holistic query evaluation", ICDE 2010)
//! stores tuples in the N-ary Storage Model with *fixed-length* records so
//! that generated code can address fields with plain pointer arithmetic
//! (`tuple + predicate_offset`).  This crate provides exactly that layout:
//! every [`Schema`] knows the byte offset of each of its columns and the
//! total record width, and [`tuple`] reads/writes typed fields at those
//! offsets over `&[u8]`/`&mut [u8]` without any per-field dispatch.

#![forbid(unsafe_code)]

pub mod cancel;
pub mod datatype;
pub mod error;
pub mod histogram;
pub mod result;
pub mod row;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;

pub use cancel::CancelToken;
pub use datatype::DataType;
pub use error::{HiqueError, Result};
pub use histogram::{Bucket, CmpKind, ColumnDistribution};
pub use result::{PhaseTimings, QueryResult};
pub use row::Row;
pub use schema::{Column, Schema};
pub use stats::{ExecStats, IoStats};
pub use value::Value;
