//! SQL data types with fixed on-disk widths.
//!
//! Every type has a fixed byte width so that records are fixed-length and
//! generated code can locate a field as `record_base + column_offset`, which
//! is the key enabler of the paper's template-generated access code
//! (Listing 1 of the paper).

use std::fmt;

/// A SQL data type supported by the engine.
///
/// All types are fixed width.  Strings are stored as fixed-length,
/// space-padded `CHAR(n)` fields (TPC-H columns are declared with known
/// maximum widths, so this loses no information for the reproduced
/// workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float (used for prices/discounts; the paper's
    /// workloads do not require exact decimals).
    Float64,
    /// Calendar date stored as days since 1970-01-01 (32-bit).
    Date,
    /// Fixed-length character string of `n` bytes, space padded.
    Char(u16),
}

impl DataType {
    /// Byte width of a value of this type inside an NSM record.
    #[inline]
    pub const fn width(&self) -> usize {
        match self {
            DataType::Int32 => 4,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Date => 4,
            DataType::Char(n) => *n as usize,
        }
    }

    /// True for types whose comparison is a primitive machine comparison
    /// (the paper's generated code reverts predicate evaluation on these to
    /// direct comparisons instead of function calls).
    #[inline]
    pub const fn is_primitive(&self) -> bool {
        !matches!(self, DataType::Char(_))
    }

    /// True if the type is numeric (valid input for SUM/AVG/MIN/MAX
    /// arithmetic aggregates).
    #[inline]
    pub const fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// Short lowercase SQL-ish name, used by the plan explainer and the
    /// source-code generator when it needs a C-style type name.
    pub fn sql_name(&self) -> String {
        match self {
            DataType::Int32 => "int".to_string(),
            DataType::Int64 => "bigint".to_string(),
            DataType::Float64 => "double".to_string(),
            DataType::Date => "date".to_string(),
            DataType::Char(n) => format!("char({n})"),
        }
    }

    /// C type name used in the emitted source artifact, mirroring the code
    /// the paper's generator writes (e.g. `int *value = tuple + offset`).
    pub fn c_name(&self) -> &'static str {
        match self {
            DataType::Int32 => "int32_t",
            DataType::Int64 => "int64_t",
            DataType::Float64 => "double",
            DataType::Date => "int32_t",
            DataType::Char(_) => "char",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_fixed_and_positive() {
        assert_eq!(DataType::Int32.width(), 4);
        assert_eq!(DataType::Int64.width(), 8);
        assert_eq!(DataType::Float64.width(), 8);
        assert_eq!(DataType::Date.width(), 4);
        assert_eq!(DataType::Char(10).width(), 10);
        assert_eq!(DataType::Char(1).width(), 1);
    }

    #[test]
    fn primitive_classification() {
        assert!(DataType::Int32.is_primitive());
        assert!(DataType::Int64.is_primitive());
        assert!(DataType::Float64.is_primitive());
        assert!(DataType::Date.is_primitive());
        assert!(!DataType::Char(25).is_primitive());
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int32.is_numeric());
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Date.is_numeric());
        assert!(!DataType::Char(4).is_numeric());
    }

    #[test]
    fn names_round_trip_reasonably() {
        assert_eq!(DataType::Int32.sql_name(), "int");
        assert_eq!(DataType::Char(25).sql_name(), "char(25)");
        assert_eq!(DataType::Float64.c_name(), "double");
        assert_eq!(format!("{}", DataType::Date), "date");
    }
}
