//! Error type shared by every HIQUE crate.

use std::fmt;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, HiqueError>;

/// Errors produced anywhere in the engine.
///
/// One enum is shared by all crates so that cross-layer call chains
/// (SQL → plan → storage → execution) propagate errors without conversion
/// boilerplate; the variant records which layer failed.
#[derive(Debug, Clone, PartialEq)]
pub enum HiqueError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query referenced unknown tables/columns or mis-typed expressions.
    Analysis(String),
    /// A type mismatch at runtime or plan time.
    Type(String),
    /// Catalog inconsistency (unknown table, duplicate table, ...).
    Catalog(String),
    /// Storage-layer failure (page full, invalid slot, I/O error text, ...).
    Storage(String),
    /// The optimizer could not produce a plan for the query.
    Plan(String),
    /// A failure while generating query-specific code.
    Codegen(String),
    /// A failure during query execution.
    Execution(String),
    /// The requested feature is recognized but not supported
    /// (mirrors the paper's explicitly unsupported features, e.g. nested
    /// queries and statistical aggregate functions).
    Unsupported(String),
    /// The query was cancelled cooperatively (explicit cancel, statement
    /// deadline, or server shutdown drain) before it completed.  Always
    /// retryable: cancellation unwinds through RAII guards, so no storage
    /// state is left behind.
    Cancelled(String),
}

impl HiqueError {
    /// Short label for the layer that produced the error.
    pub fn layer(&self) -> &'static str {
        match self {
            HiqueError::Parse(_) => "parse",
            HiqueError::Analysis(_) => "analysis",
            HiqueError::Type(_) => "type",
            HiqueError::Catalog(_) => "catalog",
            HiqueError::Storage(_) => "storage",
            HiqueError::Plan(_) => "plan",
            HiqueError::Codegen(_) => "codegen",
            HiqueError::Execution(_) => "execution",
            HiqueError::Unsupported(_) => "unsupported",
            HiqueError::Cancelled(_) => "cancelled",
        }
    }

    /// True for errors a client may simply retry: the engine guarantees the
    /// failed execution released every claim, pin and temp file it held.
    /// Cancellation is always retryable; storage errors are retryable when
    /// they carry the injected-fault marker used by the chaos harness (the
    /// fault plan is exhausted or replaced between runs).  Semantic errors
    /// (parse/analysis/type/plan/...) are deterministic and never retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            HiqueError::Cancelled(_) => true,
            HiqueError::Storage(m) | HiqueError::Execution(m) => m.contains("injected fault"),
            _ => false,
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            HiqueError::Parse(m)
            | HiqueError::Analysis(m)
            | HiqueError::Type(m)
            | HiqueError::Catalog(m)
            | HiqueError::Storage(m)
            | HiqueError::Plan(m)
            | HiqueError::Codegen(m)
            | HiqueError::Execution(m)
            | HiqueError::Unsupported(m)
            | HiqueError::Cancelled(m) => m,
        }
    }
}

impl fmt::Display for HiqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.layer(), self.message())
    }
}

impl std::error::Error for HiqueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = HiqueError::Parse("unexpected token ';'".into());
        assert_eq!(e.to_string(), "parse error: unexpected token ';'");
        assert_eq!(e.layer(), "parse");
        assert_eq!(e.message(), "unexpected token ';'");
    }

    #[test]
    fn all_layers_have_distinct_labels() {
        let errs = [
            HiqueError::Parse(String::new()),
            HiqueError::Analysis(String::new()),
            HiqueError::Type(String::new()),
            HiqueError::Catalog(String::new()),
            HiqueError::Storage(String::new()),
            HiqueError::Plan(String::new()),
            HiqueError::Codegen(String::new()),
            HiqueError::Execution(String::new()),
            HiqueError::Unsupported(String::new()),
            HiqueError::Cancelled(String::new()),
        ];
        let mut labels: Vec<_> = errs.iter().map(|e| e.layer()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), errs.len());
    }

    #[test]
    fn retryability_is_typed() {
        assert!(HiqueError::Cancelled("deadline".into()).is_retryable());
        assert!(HiqueError::Storage("injected fault: write 3 of file".into()).is_retryable());
        assert!(!HiqueError::Storage("page 7 out of range".into()).is_retryable());
        assert!(!HiqueError::Parse("bad token".into()).is_retryable());
        assert!(!HiqueError::Analysis("no such column".into()).is_retryable());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&HiqueError::Execution("boom".into()));
    }
}
