//! Pool-backed row runs: the iterator engine's spilled intermediates.
//!
//! Blocking operators in this engine materialize `Vec<Row>`s (sort runs,
//! hash-partitioned join inputs).  Under a memory budget those runs are
//! encoded back into the fixed-width record layout of their schema and
//! written through the catalog's buffer pool via the shared pipeline
//! [`SpillContext`]; consumption decodes them **one pinned pool page at a
//! time** through a [`RowCursor`], so a spilled run is never re-materialized
//! as a whole row vector on its way to the parent operator.
//!
//! The spill decision is size-only (the shared `SpillContext` threshold),
//! so `threads = N` spills exactly what `threads = 1` spills and results
//! are identical for every budget.

use std::rc::Rc;

use hique_pipeline::SpillContext;
use hique_storage::SpillHandle;
use hique_types::{Result, Row, Schema};

/// A row run encoded into spill pages: handle + the schema needed to decode
/// records back into rows.
pub struct SpilledRows {
    handle: SpillHandle,
    schema: Schema,
}

impl SpilledRows {
    /// Encode `rows` (laid out by `schema`) into spill pages.
    pub fn spill(rows: &[Row], schema: &Schema, ctx: &SpillContext) -> Result<SpilledRows> {
        let ts = schema.tuple_size();
        let mut buf = Vec::with_capacity(rows.len() * ts);
        for row in rows {
            buf.extend_from_slice(&row.to_record(schema)?);
        }
        let handle = ctx.spill(&buf, ts)?;
        Ok(SpilledRows {
            handle,
            schema: schema.clone(),
        })
    }

    /// Number of rows in the run.
    pub fn num_rows(&self) -> usize {
        self.handle.records
    }

    /// Decode the whole run back into rows, reading page-at-a-time through
    /// pin guards (for consumers that need the full run at once, e.g. a
    /// merge cursor over one partition pair).
    pub fn load(&self, ctx: &SpillContext) -> Result<Vec<Row>> {
        // A full load holds the whole range's rows; record it on the meter
        // so the gap to the streaming cursor stays observable.
        let _resident = ctx.meter().track(self.handle.pages);
        let mut rows = Vec::with_capacity(self.handle.records);
        let ts = self.schema.tuple_size();
        for i in 0..self.handle.pages {
            let page = ctx.temp().page_guard(&self.handle, i)?;
            for rec in page.data().chunks_exact(ts) {
                rows.push(Row::from_record(&self.schema, rec));
            }
        }
        Ok(rows)
    }

    /// A streaming decoder over the run: rows come back in order, decoding
    /// one page per refill, with only that page's rows resident.
    pub fn cursor(&self, ctx: Rc<SpillContext>) -> RowCursor {
        RowCursor {
            ctx,
            handle: self.handle,
            schema: self.schema.clone(),
            next_page: 0,
            buffer: Vec::new(),
            pos: 0,
        }
    }
}

/// Streaming decoder over a [`SpilledRows`] run.
pub struct RowCursor {
    ctx: Rc<SpillContext>,
    handle: SpillHandle,
    schema: Schema,
    next_page: usize,
    buffer: Vec<Row>,
    pos: usize,
}

impl RowCursor {
    /// The next row of the run, or `None` when exhausted.  (Named like the
    /// Volcano interface on purpose — this is a pull cursor, not a std
    /// iterator, because each pull can fail on I/O.)
    // Iterator::next cannot express the fallible pull, hence the clash.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.pos < self.buffer.len() {
                let row = self.buffer[self.pos].clone();
                self.pos += 1;
                return Ok(Some(row));
            }
            if self.next_page >= self.handle.pages {
                return Ok(None);
            }
            // Refill from the next pinned page, then release it: only one
            // page's rows are ever resident.
            let ts = self.schema.tuple_size();
            let page = self.ctx.temp().page_guard(&self.handle, self.next_page)?;
            let _resident = self.ctx.meter().track(1);
            self.buffer.clear();
            self.buffer.extend(
                page.data()
                    .chunks_exact(ts)
                    .map(|rec| Row::from_record(&self.schema, rec)),
            );
            self.pos = 0;
            self.next_page += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_storage::{BufferPool, TempSpace};
    use hique_types::{Column, DataType, Value};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Float64),
            Column::new("tag", DataType::Char(4)),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i as i32),
                    Value::Float64(i as f64 * 0.5),
                    Value::Str(if i % 2 == 0 { "ev" } else { "od" }.into()),
                ])
            })
            .collect()
    }

    fn ctx(name: &str, budget: usize) -> (Rc<SpillContext>, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "hique_iter_spill_{}_{name}.spill",
            std::process::id()
        ));
        let pool = Arc::new(BufferPool::new(budget).unwrap());
        let temp = Arc::new(TempSpace::create(pool, &path).unwrap());
        (
            Rc::new(SpillContext::acquire(&temp, 1).expect("space free")),
            path,
        )
    }

    #[test]
    fn rows_round_trip_through_load_and_cursor() {
        let (ctx, path) = ctx("roundtrip", 2);
        let original = rows(1000);
        let run = SpilledRows::spill(&original, &schema(), &ctx).unwrap();
        assert_eq!(run.num_rows(), 1000);

        let mut cursor = run.cursor(Rc::clone(&ctx));
        let mut streamed = Vec::new();
        while let Some(row) = cursor.next().unwrap() {
            streamed.push(row);
        }
        assert_eq!(streamed, original);
        // The streaming decode held one page at a time on the meter...
        assert_eq!(ctx.meter().peak(), 1);

        // ...while a full load registers the whole multi-page range.
        assert_eq!(run.load(&ctx).unwrap(), original);
        assert!(ctx.meter().peak() > 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_runs_are_fine() {
        let (ctx, path) = ctx("empty", 2);
        let run = SpilledRows::spill(&[], &schema(), &ctx).unwrap();
        assert_eq!(run.num_rows(), 0);
        assert!(run.load(&ctx).unwrap().is_empty());
        assert!(run.cursor(Rc::clone(&ctx)).next().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
