//! Row-level predicate and expression evaluation with call accounting.
//!
//! In the generic mode every field access and every comparison is charged as
//! a function call (the paper's generic iterators perform both through
//! virtual functions); in the optimized mode only the evaluation work itself
//! remains.

use hique_sql::analyze::{ColumnFilter, ScalarExpr};
use hique_types::{Result, Row, Value};

use crate::iterator::ExecContext;

/// Evaluate a conjunction of filters against a row (columns are indexes into
/// the row's schema).
pub fn filters_match(filters: &[ColumnFilter], row: &Row, ctx: &ExecContext) -> bool {
    for f in filters {
        // One accessor call + one comparator call per predicate in the
        // generic implementation.
        ctx.add_generic_call(2);
        ctx.add_comparisons(1);
        if !f.matches(row.get(f.column)) {
            return false;
        }
    }
    true
}

/// Evaluate a scalar expression over a row, charging one accessor call per
/// column reference in generic mode.
pub fn eval_scalar(expr: &ScalarExpr, row: &Row, ctx: &ExecContext) -> Result<Value> {
    let mut cols = Vec::new();
    expr.collect_columns(&mut cols);
    ctx.add_generic_call(cols.len() as u64);
    expr.eval_values(row.values())
}

/// Compare two rows on single key columns (used by merge joins), charging
/// accessor/comparator calls in generic mode.
pub fn compare_keys(
    left: &Row,
    left_col: usize,
    right: &Row,
    right_col: usize,
    ctx: &ExecContext,
) -> std::cmp::Ordering {
    ctx.add_generic_call(2);
    ctx.add_comparisons(1);
    left.get(left_col).total_cmp(right.get(right_col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::ExecMode;
    use hique_sql::ast::CmpOp;

    fn row() -> Row {
        Row::new(vec![
            Value::Int32(5),
            Value::Float64(2.5),
            Value::Str("x".into()),
        ])
    }

    #[test]
    fn filters_and_counting() {
        let ctx = ExecContext::new(ExecMode::Generic);
        let filters = vec![
            ColumnFilter {
                table: 0,
                column: 0,
                op: CmpOp::Eq,
                value: Value::Int32(5),
            },
            ColumnFilter {
                table: 0,
                column: 1,
                op: CmpOp::Lt,
                value: Value::Float64(3.0),
            },
        ];
        assert!(filters_match(&filters, &row(), &ctx));
        assert_eq!(ctx.stats().function_calls, 4);
        assert_eq!(ctx.stats().comparisons, 2);

        let failing = vec![ColumnFilter {
            table: 0,
            column: 2,
            op: CmpOp::Eq,
            value: Value::Str("y".into()),
        }];
        assert!(!filters_match(&failing, &row(), &ctx));
    }

    #[test]
    fn optimized_mode_charges_no_generic_calls() {
        let ctx = ExecContext::new(ExecMode::Optimized);
        let filters = vec![ColumnFilter {
            table: 0,
            column: 0,
            op: CmpOp::GtEq,
            value: Value::Int32(1),
        }];
        assert!(filters_match(&filters, &row(), &ctx));
        assert_eq!(ctx.stats().function_calls, 0);
        assert_eq!(ctx.stats().comparisons, 1);
    }

    #[test]
    fn scalar_eval_and_key_compare() {
        let ctx = ExecContext::new(ExecMode::Generic);
        let expr = ScalarExpr::Binary {
            op: hique_sql::ast::BinOp::Mul,
            left: Box::new(ScalarExpr::Column {
                index: 1,
                dtype: hique_types::DataType::Float64,
            }),
            right: Box::new(ScalarExpr::Literal(Value::Int32(4))),
            dtype: hique_types::DataType::Float64,
        };
        let v = eval_scalar(&expr, &row(), &ctx).unwrap();
        assert_eq!(v, Value::Float64(10.0));
        assert_eq!(ctx.stats().function_calls, 1);

        let other = Row::new(vec![Value::Int32(7)]);
        let ord = compare_keys(&row(), 0, &other, 0, &ctx);
        assert_eq!(ord, std::cmp::Ordering::Less);
    }
}
