//! # hique-iter
//!
//! The **iterator-model (Volcano) baseline engine** of the HIQUE
//! reproduction.  This engine deliberately embodies the design the paper
//! criticises (§II-B):
//!
//! * operators communicate through a generic `open()/next()/close()`
//!   interface behind dynamic dispatch — every in-flight tuple costs at
//!   least two function calls;
//! * tuples travel as materialized [`Row`]s of boxed [`hique_types::Value`]s
//!   rather than raw records;
//! * predicate evaluation and field access are generic: in
//!   [`ExecMode::Generic`] they are counted as separate accessor/comparator
//!   calls, in [`ExecMode::Optimized`] the per-field calls are inlined
//!   (the paper's "optimized iterators") but the tuple-at-a-time interface
//!   and `Row` materialization remain.
//!
//! The engine executes the same [`hique_plan::PhysicalPlan`]s as the DSM and
//! holistic engines, so the measured difference isolates the execution
//! model, which is exactly the comparison of the paper's Figures 5–7.

#![forbid(unsafe_code)]

pub mod agg;
pub mod exec;
pub mod expr;
pub mod iterator;
pub mod join;
pub mod project;
pub mod scan;
pub mod sort;
pub mod spill;

pub use exec::{execute_plan, execute_plan_cancellable, execute_plan_with};
pub use iterator::{ExecContext, ExecMode, QueryIterator};

/// Convenience alias for boxed operators in a pipeline borrowing the catalog
/// for lifetime `'a`.
pub type BoxedIterator<'a> = Box<dyn QueryIterator + 'a>;
