//! Table scan iterator with filtering and projection.

use hique_plan::StagedTable;
use hique_storage::{PageRef, TableHeap};
use hique_types::{Result, Row, Schema};

use crate::expr::filters_match;
use crate::iterator::{ExecContext, QueryIterator};

/// Scans a base table heap, applies the staged filters and projects the kept
/// columns — the iterator-engine counterpart of the paper's data staging
/// scan (but producing one `Row` per `next()` call instead of a staged
/// temporary table).
///
/// Pages are held through a [`PageRef`] guard, so the same iterator serves
/// memory-resident heaps (borrowed pages) and pool-backed heaps: a paged
/// heap's current page stays pinned in the buffer pool between `next()`
/// calls and is unpinned when the scan moves on.
pub struct ScanIterator<'a> {
    heap: &'a TableHeap,
    staged: StagedTable,
    ctx: ExecContext,
    page: usize,
    slot: usize,
    current: Option<PageRef<'a>>,
    opened: bool,
}

impl<'a> ScanIterator<'a> {
    /// Create a scan over `heap` described by the plan's staging descriptor.
    pub fn new(heap: &'a TableHeap, staged: StagedTable, ctx: ExecContext) -> Self {
        ScanIterator {
            heap,
            staged,
            ctx,
            page: 0,
            slot: 0,
            current: None,
            opened: false,
        }
    }
}

impl QueryIterator for ScanIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        self.page = 0;
        self.slot = 0;
        self.current = None;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        debug_assert!(self.opened, "next() before open()");
        // The caller/callee pair of the iterator interface.
        self.ctx.add_calls(2);
        loop {
            if self.current.is_none() {
                if self.page >= self.heap.num_pages() {
                    return Ok(None);
                }
                self.ctx.check_cancel()?;
                self.current = Some(self.heap.page_guard(self.page)?);
            }
            // Decode (copying) before advancing, so the record borrow from
            // the guard does not outlive the cursor update.
            let base_schema = self.heap.schema();
            let decoded = {
                let page = self.current.as_ref().expect("guard set above");
                if self.slot < page.num_tuples() {
                    let record = page.record(self.slot);
                    self.ctx.add_tuple(record.len());
                    // Generic engines decode the whole tuple into boxed
                    // values before doing anything else with it.
                    Some(Row::from_record(base_schema, record))
                } else {
                    None
                }
            };
            let Some(row) = decoded else {
                self.current = None;
                self.page += 1;
                self.slot = 0;
                continue;
            };
            self.slot += 1;
            self.ctx.add_generic_call(base_schema.len() as u64);
            if !filters_match(&self.staged.filters, &row, &self.ctx) {
                continue;
            }
            return Ok(Some(row.project(&self.staged.keep)));
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.current = None;
        self.opened = false;
    }

    fn schema(&self) -> &Schema {
        &self.staged.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use hique_plan::StagingStrategy;
    use hique_sql::analyze::ColumnFilter;
    use hique_sql::ast::CmpOp;
    use hique_types::{Column, DataType, Value};

    fn heap() -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Float64),
            Column::new("tag", DataType::Char(4)),
        ]);
        TableHeap::from_rows(
            schema,
            (0..100).map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Float64(i as f64 * 0.5),
                    Value::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
                ])
            }),
        )
        .unwrap()
    }

    fn staged(filters: Vec<ColumnFilter>, keep: Vec<usize>, schema: &Schema) -> StagedTable {
        StagedTable {
            table: 0,
            table_name: "t".into(),
            filters,
            schema: schema.project(&keep),
            keep,
            strategy: StagingStrategy::None,
            estimated_rows: 0,
        }
    }

    #[test]
    fn scan_filters_and_projects() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Generic);
        let filter = ColumnFilter {
            table: 0,
            column: 0,
            op: CmpOp::Lt,
            value: Value::Int32(10),
        };
        let mut scan = ScanIterator::new(
            &heap,
            staged(vec![filter], vec![1, 0], heap.schema()),
            ctx.clone(),
        );
        let rows = drain(&mut scan, &ctx).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3].values(), &[Value::Float64(1.5), Value::Int32(3)]);
        assert_eq!(scan.schema().names(), vec!["v", "k"]);
        // All 100 tuples were touched even though only 10 survived.
        assert_eq!(ctx.stats().tuples_processed, 100);
        assert!(ctx.stats().function_calls > 200);
    }

    #[test]
    fn scan_without_filters_returns_everything() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut scan =
            ScanIterator::new(&heap, staged(vec![], vec![0], heap.schema()), ctx.clone());
        let rows = drain(&mut scan, &ctx).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[99].values(), &[Value::Int32(99)]);
    }

    #[test]
    fn string_filter_matches() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Generic);
        let filter = ColumnFilter {
            table: 0,
            column: 2,
            op: CmpOp::Eq,
            value: Value::Str("even".into()),
        };
        let mut scan = ScanIterator::new(
            &heap,
            staged(vec![filter], vec![0, 2], heap.schema()),
            ctx.clone(),
        );
        let rows = drain(&mut scan, &ctx).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r.get(1) == &Value::Str("even".into())));
    }
}
