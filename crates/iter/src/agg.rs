//! Aggregation iterators: sort, hybrid hash-sort and map aggregation.
//!
//! The iterator-engine implementations mirror the paper's three aggregation
//! algorithms (§V-B) while staying within the tuple-at-a-time model: the
//! input is pulled row by row through `next()` calls and every accumulator
//! update goes through boxed [`Value`]s.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use hique_plan::AggregateSpec;
use hique_sql::ast::AggFunc;
use hique_types::{result::sort_rows, Column, DataType, HiqueError, Result, Row, Schema, Value};

use crate::expr::eval_scalar;
use crate::iterator::{ExecContext, QueryIterator};
use crate::BoxedIterator;

/// A single aggregate accumulator.
#[derive(Debug, Clone)]
pub enum AggAccum {
    /// Running sum.
    Sum(f64),
    /// Running count.
    Count(i64),
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Running sum + count for AVG.
    Avg { sum: f64, count: i64 },
}

impl AggAccum {
    /// Fresh accumulator for the given function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggAccum::Sum(0.0),
            AggFunc::Count => AggAccum::Count(0),
            AggFunc::Min => AggAccum::Min(None),
            AggFunc::Max => AggAccum::Max(None),
            AggFunc::Avg => AggAccum::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input value (None only for `COUNT(*)`).
    pub fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        match self {
            AggAccum::Sum(s) => {
                *s += arg
                    .ok_or_else(|| HiqueError::Execution("SUM requires an argument".into()))?
                    .as_f64()?;
            }
            AggAccum::Count(c) => *c += 1,
            AggAccum::Min(m) => {
                let v =
                    arg.ok_or_else(|| HiqueError::Execution("MIN requires an argument".into()))?;
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            AggAccum::Max(m) => {
                let v =
                    arg.ok_or_else(|| HiqueError::Execution("MAX requires an argument".into()))?;
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            AggAccum::Avg { sum, count } => {
                *sum += arg
                    .ok_or_else(|| HiqueError::Execution("AVG requires an argument".into()))?
                    .as_f64()?;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value with the planned output type.
    pub fn finish(&self, dtype: DataType) -> Value {
        match self {
            AggAccum::Sum(s) => match dtype {
                DataType::Int64 => Value::Int64(*s as i64),
                DataType::Int32 => Value::Int32(*s as i32),
                _ => Value::Float64(*s),
            },
            AggAccum::Count(c) => Value::Int64(*c),
            AggAccum::Min(m) | AggAccum::Max(m) => m.clone().unwrap_or(Value::Float64(f64::NAN)),
            AggAccum::Avg { sum, count } => {
                if *count == 0 {
                    Value::Float64(f64::NAN)
                } else {
                    Value::Float64(sum / *count as f64)
                }
            }
        }
    }
}

/// Output schema of an aggregation: group columns followed by aggregates.
fn agg_output_schema(spec: &AggregateSpec, input: &Schema) -> Schema {
    let mut cols: Vec<Column> = spec
        .group_columns
        .iter()
        .map(|&c| input.column(c).clone())
        .collect();
    for (i, a) in spec.aggregates.iter().enumerate() {
        cols.push(Column::new(format!("agg_{i}"), a.dtype));
    }
    Schema::new(cols)
}

/// Accumulate a row into a group's accumulators.
fn update_group(
    accums: &mut [AggAccum],
    spec: &AggregateSpec,
    row: &Row,
    ctx: &ExecContext,
) -> Result<()> {
    for (a, acc) in spec.aggregates.iter().zip(accums.iter_mut()) {
        let arg = match &a.arg {
            Some(e) => Some(eval_scalar(e, row, ctx)?),
            None => None,
        };
        ctx.add_generic_call(1);
        acc.update(arg.as_ref())?;
    }
    Ok(())
}

fn group_row(key: &[Value], accums: &[AggAccum], spec: &AggregateSpec) -> Row {
    let mut values: Vec<Value> = key.to_vec();
    for (acc, a) in accums.iter().zip(&spec.aggregates) {
        values.push(acc.finish(a.dtype));
    }
    Row::new(values)
}

/// The three aggregation strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Input sorted on the grouping columns; one linear scan.
    Sort,
    /// Hash-partition on the first grouping column, sort partitions, scan.
    HybridHashSort,
    /// Per-attribute value directories; single scan, no staging.
    Map,
}

/// Blocking aggregation iterator (computes all groups on `open()`).
pub struct AggregateIterator<'a> {
    child: BoxedIterator<'a>,
    spec: AggregateSpec,
    strategy: AggStrategy,
    ctx: ExecContext,
    schema: Schema,
    groups: Vec<Row>,
    pos: usize,
}

impl<'a> AggregateIterator<'a> {
    /// Aggregate `child` according to `spec` using `strategy`.
    pub fn new(
        child: BoxedIterator<'a>,
        spec: AggregateSpec,
        strategy: AggStrategy,
        ctx: ExecContext,
    ) -> Self {
        let schema = agg_output_schema(&spec, child.schema());
        AggregateIterator {
            child,
            spec,
            strategy,
            ctx,
            schema,
            groups: Vec::new(),
            pos: 0,
        }
    }

    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.ctx
            .add_generic_call(self.spec.group_columns.len() as u64);
        self.spec
            .group_columns
            .iter()
            .map(|&c| row.get(c).clone())
            .collect()
    }

    /// Pull one child row, charging the iterator-interface calls and tuple
    /// counters exactly as the materializing drain used to.
    fn pull(&mut self, width: usize) -> Result<Option<Row>> {
        match self.child.next()? {
            Some(row) => {
                self.ctx.add_calls(2);
                self.ctx.add_tuple(width);
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    /// Scan a run of rows sorted by group key, emitting one row per group.
    fn aggregate_sorted_run(&mut self, rows: &[Row]) -> Result<()> {
        let mut current_key: Option<Vec<Value>> = None;
        let mut accums: Vec<AggAccum> = Vec::new();
        for row in rows {
            let key = self.key_of(row);
            let same = current_key.as_ref() == Some(&key);
            if !same {
                if let Some(k) = current_key.take() {
                    self.groups.push(group_row(&k, &accums, &self.spec));
                }
                current_key = Some(key);
                accums = self
                    .spec
                    .aggregates
                    .iter()
                    .map(|a| AggAccum::new(a.func))
                    .collect();
            }
            self.ctx
                .add_comparisons(self.spec.group_columns.len() as u64);
            update_group(&mut accums, &self.spec, row, &self.ctx)?;
        }
        if let Some(k) = current_key.take() {
            self.groups.push(group_row(&k, &accums, &self.spec));
        }
        Ok(())
    }

    /// Sort aggregation over an already-sorted child, streamed: one pulled
    /// row at a time through the group-boundary scan, so a spilled sort run
    /// below flows page-by-page straight into the accumulators without ever
    /// re-materializing as a row vector.
    fn stream_sorted(&mut self, width: usize) -> Result<()> {
        let mut current_key: Option<Vec<Value>> = None;
        let mut accums: Vec<AggAccum> = Vec::new();
        while let Some(row) = self.pull(width)? {
            let key = self.key_of(&row);
            let same = current_key.as_ref() == Some(&key);
            if !same {
                if let Some(k) = current_key.take() {
                    self.groups.push(group_row(&k, &accums, &self.spec));
                }
                current_key = Some(key);
                accums = self
                    .spec
                    .aggregates
                    .iter()
                    .map(|a| AggAccum::new(a.func))
                    .collect();
            }
            self.ctx
                .add_comparisons(self.spec.group_columns.len() as u64);
            update_group(&mut accums, &self.spec, &row, &self.ctx)?;
        }
        if let Some(k) = current_key.take() {
            self.groups.push(group_row(&k, &accums, &self.spec));
        }
        Ok(())
    }

    /// Hybrid hash-sort aggregation, streamed: rows scatter into hash
    /// partitions as they are pulled; the per-partition sorts then run
    /// across the context's pool (deterministic chunk order) and each
    /// sorted partition is scanned in partition order.
    fn stream_hybrid(&mut self, width: usize) -> Result<()> {
        if self.spec.group_columns.is_empty() {
            return self.stream_sorted(width);
        }
        let partitions = 64usize;
        self.ctx.add_partition_pass();
        let first = self.spec.group_columns[0];
        let mut parts: Vec<Vec<Row>> = vec![Vec::new(); partitions];
        while let Some(row) = self.pull(width)? {
            let mut h = DefaultHasher::new();
            row.get(first).hash(&mut h);
            self.ctx.add_hashes(1);
            parts[(h.finish() as usize) % partitions].push(row);
        }
        let keys: Vec<(usize, bool)> = self.spec.group_columns.iter().map(|&c| (c, true)).collect();
        let pool = *self.ctx.pool();
        // One owned task per partition, results in partition order — the
        // same rows the serial loop would sort, never clones of them.
        let sorted: Vec<Vec<Row>> = pool.map_owned(parts, |_, mut p| {
            sort_rows(&mut p, &keys);
            p
        });
        for part in &sorted {
            if part.is_empty() {
                continue;
            }
            self.ctx.add_sort_pass();
            self.aggregate_sorted_run(part)?;
        }
        Ok(())
    }

    /// Map aggregation, streamed: per-attribute value directories assigning
    /// dense identifiers, plus a map from the composed group identifier to
    /// accumulators, fed one pulled row at a time.  The iterator flavour
    /// keeps the directories as ordered maps of boxed values — the holistic
    /// engine replaces all of this with offset arithmetic over primitive
    /// directories.
    fn stream_map(&mut self, width: usize) -> Result<()> {
        let mut directories: Vec<BTreeMap<Value, usize>> =
            vec![BTreeMap::new(); self.spec.group_columns.len()];
        let mut groups: BTreeMap<Vec<usize>, (Vec<Value>, Vec<AggAccum>)> = BTreeMap::new();
        while let Some(row) = self.pull(width)? {
            let key = self.key_of(&row);
            let mut ids = Vec::with_capacity(key.len());
            for (d, v) in directories.iter_mut().zip(key.iter()) {
                let next = d.len();
                let id = *d.entry(v.clone()).or_insert(next);
                self.ctx.add_hashes(1);
                ids.push(id);
            }
            let entry = groups.entry(ids).or_insert_with(|| {
                (
                    key.clone(),
                    self.spec
                        .aggregates
                        .iter()
                        .map(|a| AggAccum::new(a.func))
                        .collect(),
                )
            });
            update_group(&mut entry.1, &self.spec, &row, &self.ctx)?;
        }
        let spec = self.spec.clone();
        self.groups.extend(
            groups
                .into_values()
                .map(|(k, accums)| group_row(&k, &accums, &spec)),
        );
        Ok(())
    }
}

impl QueryIterator for AggregateIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        self.child.open()?;
        self.ctx.add_calls(1);
        let width = self.child.schema().tuple_size();

        // Streaming consumption: every strategy folds pulled rows straight
        // into its own state (accumulators, hash partitions, directories)
        // instead of materializing the child first — the child's rows,
        // possibly decoded page-at-a-time off a spilled sort run, are never
        // collected into an input vector here.
        self.groups.clear();
        match self.strategy {
            AggStrategy::Sort => self.stream_sorted(width)?,
            AggStrategy::HybridHashSort => self.stream_hybrid(width)?,
            AggStrategy::Map => self.stream_map(width)?,
        }
        self.child.close();
        self.ctx.add_calls(1);
        // Deterministic output order across strategies: sort by group key.
        let group_keys: Vec<(usize, bool)> = (0..self.spec.group_columns.len())
            .map(|i| (i, true))
            .collect();
        sort_rows(&mut self.groups, &group_keys);
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        if self.pos < self.groups.len() {
            let row = self.groups[self.pos].clone();
            self.pos += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.groups.clear();
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use crate::scan::ScanIterator;
    use crate::sort::SortIterator;
    use hique_plan::{AggAlgorithm, StagedTable, StagingStrategy};
    use hique_sql::analyze::{BoundAggregate, ScalarExpr};
    use hique_storage::TableHeap;
    use hique_types::DataType;

    fn heap() -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("grp", DataType::Int32),
            Column::new("val", DataType::Float64),
        ]);
        TableHeap::from_rows(
            schema,
            (0..1000)
                .map(|i| Row::new(vec![Value::Int32(i % 10), Value::Float64((i % 100) as f64)])),
        )
        .unwrap()
    }

    fn scan<'a>(heap: &'a TableHeap, ctx: &ExecContext) -> BoxedIterator<'a> {
        let staged = StagedTable {
            table: 0,
            table_name: "t".into(),
            filters: vec![],
            keep: vec![0, 1],
            schema: heap.schema().clone(),
            strategy: StagingStrategy::None,
            estimated_rows: 0,
        };
        Box::new(ScanIterator::new(heap, staged, ctx.clone()))
    }

    fn spec() -> AggregateSpec {
        AggregateSpec {
            group_columns: vec![0],
            aggregates: vec![
                BoundAggregate {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::Column {
                        index: 1,
                        dtype: DataType::Float64,
                    }),
                    dtype: DataType::Float64,
                },
                BoundAggregate {
                    func: AggFunc::Count,
                    arg: None,
                    dtype: DataType::Int64,
                },
                BoundAggregate {
                    func: AggFunc::Min,
                    arg: Some(ScalarExpr::Column {
                        index: 1,
                        dtype: DataType::Float64,
                    }),
                    dtype: DataType::Float64,
                },
                BoundAggregate {
                    func: AggFunc::Avg,
                    arg: Some(ScalarExpr::Column {
                        index: 1,
                        dtype: DataType::Float64,
                    }),
                    dtype: DataType::Float64,
                },
                BoundAggregate {
                    func: AggFunc::Max,
                    arg: Some(ScalarExpr::Column {
                        index: 1,
                        dtype: DataType::Float64,
                    }),
                    dtype: DataType::Float64,
                },
            ],
            algorithm: AggAlgorithm::Map,
            group_domain_sizes: vec![10],
        }
    }

    fn run(strategy: AggStrategy) -> Vec<Row> {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Optimized);
        let child: BoxedIterator = if strategy == AggStrategy::Sort {
            Box::new(SortIterator::ascending(
                scan(&heap, &ctx),
                &[0],
                ctx.clone(),
            ))
        } else {
            scan(&heap, &ctx)
        };
        let mut agg = AggregateIterator::new(child, spec(), strategy, ctx.clone());
        drain(&mut agg, &ctx).unwrap()
    }

    #[test]
    fn all_strategies_agree() {
        let sort = run(AggStrategy::Sort);
        let hybrid = run(AggStrategy::HybridHashSort);
        let map = run(AggStrategy::Map);
        assert_eq!(sort.len(), 10);
        assert_eq!(sort, hybrid);
        assert_eq!(sort, map);
        // Spot-check group 0: values are (0, 10, ..., 90) repeated 10 times.
        let g0 = &sort[0];
        assert_eq!(g0.get(0), &Value::Int32(0));
        assert_eq!(g0.get(1), &Value::Float64(4500.0)); // sum
        assert_eq!(g0.get(2), &Value::Int64(100)); // count
        assert_eq!(g0.get(3), &Value::Float64(0.0)); // min
        assert_eq!(g0.get(4), &Value::Float64(45.0)); // avg
        assert_eq!(g0.get(5), &Value::Float64(90.0)); // max
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Generic);
        let mut s = spec();
        s.group_columns = vec![];
        s.group_domain_sizes = vec![];
        let mut agg = AggregateIterator::new(scan(&heap, &ctx), s, AggStrategy::Map, ctx.clone());
        let rows = drain(&mut agg, &ctx).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Int64(1000)); // count(*)
    }

    #[test]
    fn accumulator_finish_types() {
        let mut sum = AggAccum::new(AggFunc::Sum);
        sum.update(Some(&Value::Int32(3))).unwrap();
        sum.update(Some(&Value::Int32(4))).unwrap();
        assert_eq!(sum.finish(DataType::Int64), Value::Int64(7));
        assert_eq!(sum.finish(DataType::Float64), Value::Float64(7.0));
        assert!(sum.update(None).is_err());

        let mut count = AggAccum::new(AggFunc::Count);
        count.update(None).unwrap();
        count.update(Some(&Value::Int32(1))).unwrap();
        assert_eq!(count.finish(DataType::Int64), Value::Int64(2));

        let empty_avg = AggAccum::new(AggFunc::Avg);
        assert!(matches!(empty_avg.finish(DataType::Float64), Value::Float64(v) if v.is_nan()));
    }

    #[test]
    fn min_max_over_strings() {
        let mut min = AggAccum::new(AggFunc::Min);
        let mut max = AggAccum::new(AggFunc::Max);
        for s in ["pear", "apple", "zucchini"] {
            min.update(Some(&Value::Str(s.into()))).unwrap();
            max.update(Some(&Value::Str(s.into()))).unwrap();
        }
        assert_eq!(min.finish(DataType::Char(10)), Value::Str("apple".into()));
        assert_eq!(
            max.finish(DataType::Char(10)),
            Value::Str("zucchini".into())
        );
    }
}
