//! Final projection: mapping joined or aggregated rows to the query's
//! output columns.

use hique_plan::PhysicalPlan;
use hique_sql::analyze::OutputExpr;
use hique_types::{HiqueError, Result, Row, Schema};

use crate::expr::eval_scalar;
use crate::iterator::{ExecContext, QueryIterator};
use crate::BoxedIterator;

/// Computes the query's `SELECT` list over its child.
///
/// For aggregate plans the child emits rows laid out as
/// `[group columns..., aggregate values...]`; for non-aggregate plans the
/// child emits joined rows over the plan's joined schema.
pub struct OutputIterator<'a> {
    child: BoxedIterator<'a>,
    outputs: Vec<OutputExpr>,
    output_schema: Schema,
    /// Present for aggregate plans: the group columns (joined-schema
    /// indexes) in the order the aggregation child emits them.
    agg_groups: Option<Vec<usize>>,
    ctx: ExecContext,
}

impl<'a> OutputIterator<'a> {
    /// Build the output projection for `plan` over `child`.
    pub fn new(child: BoxedIterator<'a>, plan: &PhysicalPlan, ctx: ExecContext) -> Self {
        OutputIterator {
            child,
            outputs: plan.output.clone(),
            output_schema: plan.output_schema.clone(),
            agg_groups: plan.aggregate.as_ref().map(|a| a.group_columns.clone()),
            ctx,
        }
    }
}

impl QueryIterator for OutputIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        let Some(row) = self.child.next()? else {
            return Ok(None);
        };
        let mut values = Vec::with_capacity(self.outputs.len());
        for out in &self.outputs {
            let v = match out {
                OutputExpr::GroupColumn(ci) => {
                    let groups = self.agg_groups.as_ref().ok_or_else(|| {
                        HiqueError::Execution("group column output in non-aggregate plan".into())
                    })?;
                    let pos = groups.iter().position(|g| g == ci).ok_or_else(|| {
                        HiqueError::Execution(format!(
                            "group column {ci} not produced by aggregation"
                        ))
                    })?;
                    self.ctx.add_generic_call(1);
                    row.get(pos).clone()
                }
                OutputExpr::Aggregate(i) => {
                    let groups = self.agg_groups.as_ref().ok_or_else(|| {
                        HiqueError::Execution("aggregate output in non-aggregate plan".into())
                    })?;
                    self.ctx.add_generic_call(1);
                    row.get(groups.len() + i).clone()
                }
                OutputExpr::Scalar(e) => eval_scalar(e, &row, &self.ctx)?,
            };
            values.push(v);
        }
        Ok(Some(Row::new(values)))
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.child.close();
    }

    fn schema(&self) -> &Schema {
        &self.output_schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use crate::scan::ScanIterator;
    use hique_plan::{PlannerConfig, StagedTable};
    use hique_sql::analyze::ScalarExpr;
    use hique_storage::{Catalog, TableHeap};
    use hique_types::{Column, DataType, Value};

    #[test]
    fn scalar_projection_computes_expressions() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Float64),
        ]);
        let heap = TableHeap::from_rows(
            schema.clone(),
            (1..=3).map(|i| Row::new(vec![Value::Int32(i), Value::Float64(i as f64 * 10.0)])),
        )
        .unwrap();
        // Build a tiny plan by hand is painful; use the real pipeline.
        let mut catalog = Catalog::new();
        catalog.register_table("t", heap).unwrap();
        catalog.analyze_table("t").unwrap();
        let q = hique_sql::parse_query("select b * 2 as doubled, a from t").unwrap();
        let bound = hique_sql::analyze(&q, &hique_plan::CatalogProvider::new(&catalog)).unwrap();
        let plan = hique_plan::plan_query(&bound, &catalog, &PlannerConfig::default()).unwrap();

        let ctx = ExecContext::new(ExecMode::Generic);
        let staged: StagedTable = plan.staged[0].clone();
        let scan: BoxedIterator = Box::new(ScanIterator::new(
            &catalog.table("t").unwrap().heap,
            staged,
            ctx.clone(),
        ));
        let mut out = OutputIterator::new(scan, &plan, ctx.clone());
        let rows = drain(&mut out, &ctx).unwrap();
        assert_eq!(out.schema().names(), vec!["doubled", "a"]);
        assert_eq!(rows[0].values(), &[Value::Float64(20.0), Value::Int32(1)]);
        assert_eq!(rows[2].values(), &[Value::Float64(60.0), Value::Int32(3)]);
        // Verify scalar exprs are the bound kind we expect.
        assert!(matches!(
            plan.output[0],
            OutputExpr::Scalar(ScalarExpr::Binary { .. })
        ));
    }
}
