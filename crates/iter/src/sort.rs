//! Blocking sort iterator.

use std::rc::Rc;

use hique_par::{chunk_ranges, ScopedPool};
use hique_types::{
    result::{cmp_rows, sort_rows},
    Result, Row, Schema,
};

use crate::iterator::{ExecContext, QueryIterator};
use crate::spill::{RowCursor, SpilledRows};
use crate::BoxedIterator;

/// Stable parallel sort: contiguous chunks are stable-sorted across the
/// pool and merged with lowest-run-wins ties, which is byte-identical to a
/// serial stable [`sort_rows`] of the whole vector — the same
/// chunking/merge rule the holistic kernels use, applied to row runs.
/// Chunks move into their tasks ([`ScopedPool::map_owned`]): the parallel
/// mode sorts the same rows the serial mode would, never clones of them.
pub(crate) fn par_sort_rows(
    mut rows: Vec<Row>,
    keys: &[(usize, bool)],
    pool: &ScopedPool,
) -> Vec<Row> {
    if pool.is_serial() || rows.len() <= 1 {
        sort_rows(&mut rows, keys);
        return rows;
    }
    let ranges = chunk_ranges(rows.len(), pool.threads());
    let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(ranges.len());
    let mut it = rows.into_iter();
    for r in &ranges {
        chunks.push(it.by_ref().take(r.len()).collect());
    }
    let runs: Vec<Vec<Row>> = pool.map_owned(chunks, |_, mut run| {
        sort_rows(&mut run, keys);
        run
    });
    merge_sorted_row_runs(runs, keys)
}

/// Merge stable-sorted runs, preferring the lowest run index on ties (the
/// mergesort equivalence that makes chunked sorting reproduce the serial
/// stable sort exactly).
pub(crate) fn merge_sorted_row_runs(runs: Vec<Vec<Row>>, keys: &[(usize, bool)]) -> Vec<Row> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut live: Vec<usize> = (0..runs.len()).filter(|&r| !runs[r].is_empty()).collect();
    match live.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().nth(live[0]).expect("live run exists"),
        _ => {}
    }
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    while !live.is_empty() {
        let mut best = live[0];
        for &r in &live[1..] {
            // Strictly-less comparison keeps ties on the lowest run index.
            if cmp_rows(&runs[r][cursors[r]], &runs[best][cursors[best]], keys)
                == std::cmp::Ordering::Less
            {
                best = r;
            }
        }
        out.push(runs[best][cursors[best]].clone());
        cursors[best] += 1;
        if cursors[best] >= runs[best].len() {
            live.retain(|&r| r != best);
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// The sorted run waiting to be emitted: resident rows, or a spilled run
/// streamed back one pool page at a time.
enum SortedRun {
    Rows(Vec<Row>),
    Spilled(RowCursor),
}

/// Materializes its child on `open()` and emits the rows sorted by the given
/// keys.  Used for merge-join inputs, sort aggregation inputs and the final
/// `ORDER BY`.
///
/// The sort itself runs chunk-parallel across the context's pool
/// (deterministically — see [`par_sort_rows`]); under a memory budget a run
/// larger than the spill threshold is encoded into buffer-pool pages after
/// sorting and decoded back **page-at-a-time** while the parent consumes
/// it, so the emit phase holds one page of rows instead of the whole run.
pub struct SortIterator<'a> {
    child: BoxedIterator<'a>,
    keys: Vec<(usize, bool)>,
    ctx: ExecContext,
    run: SortedRun,
    pos: usize,
    schema: Schema,
}

impl<'a> SortIterator<'a> {
    /// Sort `child` by `keys` (column index, ascending), major key first.
    pub fn new(child: BoxedIterator<'a>, keys: Vec<(usize, bool)>, ctx: ExecContext) -> Self {
        let schema = child.schema().clone();
        SortIterator {
            child,
            keys,
            ctx,
            run: SortedRun::Rows(Vec::new()),
            pos: 0,
            schema,
        }
    }

    /// Sort ascending on the given columns.
    pub fn ascending(child: BoxedIterator<'a>, columns: &[usize], ctx: ExecContext) -> Self {
        Self::new(child, columns.iter().map(|&c| (c, true)).collect(), ctx)
    }
}

impl QueryIterator for SortIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        self.child.open()?;
        let mut rows = Vec::new();
        while let Some(row) = self.child.next()? {
            self.ctx.add_materialized(self.schema.tuple_size());
            rows.push(row);
        }
        self.child.close();
        let n = rows.len() as u64;
        self.ctx.add_sort_pass();
        // n log n comparisons, derived from the total row count so the
        // counter is identical for every pool width.
        if n > 1 {
            self.ctx
                .add_comparisons((n as f64 * (n as f64).log2()).ceil() as u64);
        }
        let sorted = par_sort_rows(rows, &self.keys, self.ctx.pool());
        // Size-only spill decision: a run above the threshold goes out as
        // pool pages and streams back during the emit phase.
        self.run = match self.ctx.spill() {
            Some(spill) if spill.should_spill(sorted.len() * self.schema.tuple_size()) => {
                let spilled = SpilledRows::spill(&sorted, &self.schema, spill)?;
                drop(sorted);
                SortedRun::Spilled(spilled.cursor(Rc::clone(spill)))
            }
            _ => SortedRun::Rows(sorted),
        };
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        match &mut self.run {
            SortedRun::Rows(rows) => {
                if self.pos < rows.len() {
                    let row = rows[self.pos].clone();
                    self.pos += 1;
                    Ok(Some(row))
                } else {
                    Ok(None)
                }
            }
            SortedRun::Spilled(cursor) => cursor.next(),
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.run = SortedRun::Rows(Vec::new());
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use crate::scan::ScanIterator;
    use hique_pipeline::SpillContext;
    use hique_plan::{StagedTable, StagingStrategy};
    use hique_storage::{BufferPool, TableHeap, TempSpace};
    use hique_types::{Column, DataType, Value};
    use std::sync::Arc;

    fn make_scan<'a>(heap: &'a TableHeap, ctx: &ExecContext) -> BoxedIterator<'a> {
        let staged = StagedTable {
            table: 0,
            table_name: "t".into(),
            filters: vec![],
            keep: vec![0, 1],
            schema: heap.schema().clone(),
            strategy: StagingStrategy::None,
            estimated_rows: 0,
        };
        Box::new(ScanIterator::new(heap, staged, ctx.clone()))
    }

    fn heap() -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Int32),
        ]);
        TableHeap::from_rows(
            schema,
            [5, 3, 9, 1, 3]
                .iter()
                .enumerate()
                .map(|(i, &k)| Row::new(vec![Value::Int32(k), Value::Int32(i as i32)])),
        )
        .unwrap()
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        let keys: Vec<i32> = rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap() as i32)
            .collect();
        assert_eq!(keys, vec![1, 3, 3, 5, 9]);
        assert!(ctx.stats().sort_passes >= 1);
        assert!(ctx.stats().bytes_materialized > 0);

        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut sorted = SortIterator::new(make_scan(&heap, &ctx), vec![(0, false)], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        let keys: Vec<i32> = rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap() as i32)
            .collect();
        assert_eq!(keys, vec![9, 5, 3, 3, 1]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Generic);
        let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        // The two k=3 rows keep their original relative order (v=1 then v=4).
        assert_eq!(rows[1].get(1), &Value::Int32(1));
        assert_eq!(rows[2].get(1), &Value::Int32(4));
    }

    fn big_heap(n: i32) -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Int32),
        ]);
        TableHeap::from_rows(
            schema,
            (0..n).map(|i| Row::new(vec![Value::Int32((i * 7) % 23), Value::Int32(i)])),
        )
        .unwrap()
    }

    #[test]
    fn parallel_sort_is_byte_identical_to_serial_with_equal_stats() {
        let heap = big_heap(500);
        let serial_ctx = ExecContext::new(ExecMode::Optimized);
        let mut serial =
            SortIterator::ascending(make_scan(&heap, &serial_ctx), &[0], serial_ctx.clone());
        let expected = drain(&mut serial, &serial_ctx).unwrap();
        for threads in [2, 3, 4, 16] {
            let ctx = ExecContext::new(ExecMode::Optimized).with_pool(ScopedPool::new(threads));
            let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
            let rows = drain(&mut sorted, &ctx).unwrap();
            assert_eq!(rows, expected, "threads={threads}");
            // Counters are derived from totals, so they match serial exactly.
            assert_eq!(ctx.stats(), serial_ctx.stats(), "threads={threads}");
        }
    }

    #[test]
    fn spilled_sort_run_streams_back_identically() {
        let heap = big_heap(2000);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "hique_iter_sort_spill_{}.spill",
            std::process::id()
        ));
        let pool = Arc::new(BufferPool::new(2).unwrap());
        let temp = Arc::new(TempSpace::create(pool, &path).unwrap());

        let plain_ctx = ExecContext::new(ExecMode::Optimized);
        let mut plain =
            SortIterator::ascending(make_scan(&heap, &plain_ctx), &[0], plain_ctx.clone());
        let expected = drain(&mut plain, &plain_ctx).unwrap();

        for threads in [1, 4] {
            // Budget 1 page: every run spills.
            let spill = Rc::new(SpillContext::acquire(&temp, 1).expect("space free"));
            let ctx = ExecContext::new(ExecMode::Optimized)
                .with_pool(ScopedPool::new(threads))
                .with_spill(Some(Rc::clone(&spill)));
            let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
            let rows = drain(&mut sorted, &ctx).unwrap();
            assert_eq!(rows, expected, "threads={threads}");
            assert_eq!(spill.spill_count(), 1, "run must have spilled");
            // The emit phase decoded one pinned page at a time.
            assert_eq!(spill.meter().peak(), 1, "threads={threads}");
            drop(ctx);
            drop(sorted);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_of_row_runs_handles_empties_and_ties() {
        let mk = |ks: &[i32]| -> Vec<Row> {
            ks.iter()
                .enumerate()
                .map(|(i, &k)| Row::new(vec![Value::Int32(k), Value::Int32(i as i32)]))
                .collect()
        };
        let keys = [(0usize, true)];
        assert!(merge_sorted_row_runs(vec![], &keys).is_empty());
        assert!(merge_sorted_row_runs(vec![vec![], vec![]], &keys).is_empty());
        let single = merge_sorted_row_runs(vec![vec![], mk(&[1, 2]), vec![]], &keys);
        assert_eq!(single.len(), 2);
        // Tie on k: the run-0 row must come first (stability).
        let merged = merge_sorted_row_runs(vec![mk(&[1, 5]), mk(&[1, 3])], &keys);
        let pairs: Vec<(i64, i64)> = merged
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_i64().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, 0), (1, 0), (3, 1), (5, 1)]);
    }
}
