//! Blocking sort iterator.

use hique_types::{result::sort_rows, Result, Row, Schema};

use crate::iterator::{ExecContext, QueryIterator};
use crate::BoxedIterator;

/// Materializes its child on `open()` and emits the rows sorted by the given
/// keys.  Used for merge-join inputs, sort aggregation inputs and the final
/// `ORDER BY`.
pub struct SortIterator<'a> {
    child: BoxedIterator<'a>,
    keys: Vec<(usize, bool)>,
    ctx: ExecContext,
    rows: Vec<Row>,
    pos: usize,
    schema: Schema,
}

impl<'a> SortIterator<'a> {
    /// Sort `child` by `keys` (column index, ascending), major key first.
    pub fn new(child: BoxedIterator<'a>, keys: Vec<(usize, bool)>, ctx: ExecContext) -> Self {
        let schema = child.schema().clone();
        SortIterator {
            child,
            keys,
            ctx,
            rows: Vec::new(),
            pos: 0,
            schema,
        }
    }

    /// Sort ascending on the given columns.
    pub fn ascending(child: BoxedIterator<'a>, columns: &[usize], ctx: ExecContext) -> Self {
        Self::new(child, columns.iter().map(|&c| (c, true)).collect(), ctx)
    }
}

impl QueryIterator for SortIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        self.child.open()?;
        self.rows.clear();
        while let Some(row) = self.child.next()? {
            self.ctx.add_materialized(self.schema.tuple_size());
            self.rows.push(row);
        }
        self.child.close();
        let n = self.rows.len() as u64;
        self.ctx.add_sort_pass();
        // n log n comparisons, each through the generic comparator in the
        // iterator engine.
        if n > 1 {
            self.ctx
                .add_comparisons((n as f64 * (n as f64).log2()).ceil() as u64);
        }
        sort_rows(&mut self.rows, &self.keys);
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        if self.pos < self.rows.len() {
            let row = self.rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.rows.clear();
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use crate::scan::ScanIterator;
    use hique_plan::{StagedTable, StagingStrategy};
    use hique_storage::TableHeap;
    use hique_types::{Column, DataType, Value};

    fn make_scan<'a>(heap: &'a TableHeap, ctx: &ExecContext) -> BoxedIterator<'a> {
        let staged = StagedTable {
            table: 0,
            table_name: "t".into(),
            filters: vec![],
            keep: vec![0, 1],
            schema: heap.schema().clone(),
            strategy: StagingStrategy::None,
            estimated_rows: 0,
        };
        Box::new(ScanIterator::new(heap, staged, ctx.clone()))
    }

    fn heap() -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Int32),
        ]);
        TableHeap::from_rows(
            schema,
            [5, 3, 9, 1, 3]
                .iter()
                .enumerate()
                .map(|(i, &k)| Row::new(vec![Value::Int32(k), Value::Int32(i as i32)])),
        )
        .unwrap()
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        let keys: Vec<i32> = rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap() as i32)
            .collect();
        assert_eq!(keys, vec![1, 3, 3, 5, 9]);
        assert!(ctx.stats().sort_passes >= 1);
        assert!(ctx.stats().bytes_materialized > 0);

        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut sorted = SortIterator::new(make_scan(&heap, &ctx), vec![(0, false)], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        let keys: Vec<i32> = rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap() as i32)
            .collect();
        assert_eq!(keys, vec![9, 5, 3, 3, 1]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let heap = heap();
        let ctx = ExecContext::new(ExecMode::Generic);
        let mut sorted = SortIterator::ascending(make_scan(&heap, &ctx), &[0], ctx.clone());
        let rows = drain(&mut sorted, &ctx).unwrap();
        // The two k=3 rows keep their original relative order (v=1 then v=4).
        assert_eq!(rows[1].get(1), &Value::Int32(1));
        assert_eq!(rows[2].get(1), &Value::Int32(4));
    }
}
