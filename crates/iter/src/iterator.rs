//! The iterator (Volcano) interface and shared execution context.

use std::cell::RefCell;
use std::rc::Rc;

use hique_par::ScopedPool;
use hique_pipeline::SpillContext;
use hique_types::{CancelToken, ExecStats, Result, Row, Schema};

/// How "generic" the iterator implementations behave.
///
/// The paper's §VI-A compares *generic iterators* (separate function calls
/// for field access and predicate evaluation, fully dynamic) with *optimized
/// iterators* (type-specific, inlined predicate evaluation but still
/// tuple-at-a-time).  The mode controls how much call overhead the engine
/// models and counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Generic iterators: every field access and comparison is a counted
    /// "function call" and goes through boxed values.
    Generic,
    /// Optimized iterators: predicate evaluation is type-specialized and
    /// inlined; only the iterator-interface calls remain.
    Optimized,
}

/// Shared per-query execution context: mode + counters + the partition
/// pipeline runtime (worker pool for the blocking operators' sorts and
/// scatters, spill policy for pool-backed intermediates).
#[derive(Clone)]
pub struct ExecContext {
    mode: ExecMode,
    stats: Rc<RefCell<ExecStats>>,
    /// Worker pool for the blocking operators (sort runs, partition sorts,
    /// scatter passes).  Serial by default; every width produces identical
    /// results (deterministic chunking + stable merges).
    pool: ScopedPool,
    /// Spill policy when the plan carries a memory budget and the catalog
    /// runs in paged mode: sort runs and hash-partitioned join inputs above
    /// the size threshold go through the buffer pool.
    spill: Option<Rc<SpillContext>>,
    /// Cooperative cancellation, polled at page boundaries (scan page
    /// fetches, spilled partition pulls, output batches).
    cancel: CancelToken,
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("mode", &self.mode)
            .field("threads", &self.pool.threads())
            .field("spill", &self.spill.is_some())
            .finish()
    }
}

impl ExecContext {
    /// New context for the given mode (serial, no spilling).
    pub fn new(mode: ExecMode) -> Self {
        ExecContext {
            mode,
            stats: Rc::new(RefCell::new(ExecStats::new())),
            pool: ScopedPool::serial(),
            spill: None,
            cancel: CancelToken::disabled(),
        }
    }

    /// Use `pool` for the blocking operators' parallel phases.
    pub fn with_pool(mut self, pool: ScopedPool) -> Self {
        self.pool = pool;
        self
    }

    /// Route oversized intermediates through `spill`.
    pub fn with_spill(mut self, spill: Option<Rc<SpillContext>>) -> Self {
        self.spill = spill;
        self
    }

    /// Observe `cancel` at the engine's page-granularity check points.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The cancellation token this execution observes.
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Cooperative cancellation check point.
    #[inline]
    pub fn check_cancel(&self) -> Result<()> {
        self.cancel.check()
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The worker pool for blocking operators.
    pub fn pool(&self) -> &ScopedPool {
        &self.pool
    }

    /// The active spill policy, if any.
    pub fn spill(&self) -> Option<&Rc<SpillContext>> {
        self.spill.as_ref()
    }

    /// Snapshot of the counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        *self.stats.borrow()
    }

    /// Count `n` iterator-interface / dispatch calls.
    #[inline]
    pub fn add_calls(&self, n: u64) {
        self.stats.borrow_mut().add_calls(n);
    }

    /// Count a per-field accessor or comparator call — only charged in
    /// [`ExecMode::Generic`], mirroring the paper's distinction between the
    /// generic and optimized iterator implementations.
    #[inline]
    pub fn add_generic_call(&self, n: u64) {
        if self.mode == ExecMode::Generic {
            self.stats.borrow_mut().add_calls(n);
        }
    }

    /// Count one processed tuple of `bytes` width.
    #[inline]
    pub fn add_tuple(&self, bytes: usize) {
        self.stats.borrow_mut().add_tuple(bytes);
    }

    /// Count `n` comparisons.
    #[inline]
    pub fn add_comparisons(&self, n: u64) {
        self.stats.borrow_mut().add_comparisons(n);
    }

    /// Count `n` hash operations.
    #[inline]
    pub fn add_hashes(&self, n: u64) {
        self.stats.borrow_mut().add_hashes(n);
    }

    /// Count `bytes` written to a materialized intermediate.
    #[inline]
    pub fn add_materialized(&self, bytes: usize) {
        self.stats.borrow_mut().add_materialized(bytes);
    }

    /// Count a partitioning pass.
    #[inline]
    pub fn add_partition_pass(&self) {
        self.stats.borrow_mut().partition_passes += 1;
    }

    /// Count a sort pass.
    #[inline]
    pub fn add_sort_pass(&self) {
        self.stats.borrow_mut().sort_passes += 1;
    }

    /// Record the number of rows returned to the client.
    pub fn set_rows_out(&self, rows: u64) {
        self.stats.borrow_mut().rows_out = rows;
    }
}

/// The Volcano iterator interface (paper §II-B): `open`, `get_next`,
/// `close`, with tuples pulled one at a time through virtual calls.
pub trait QueryIterator {
    /// Prepare internal state; called once before the first `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Release resources; called once after the consumer is done.
    fn close(&mut self);

    /// Schema of the rows this iterator produces.
    fn schema(&self) -> &Schema;
}

/// Drain an iterator to completion (open → next* → close), returning all
/// rows.  Used by blocking operators (sort, staging) and by tests.
pub fn drain<'a>(iter: &mut (dyn QueryIterator + 'a), ctx: &ExecContext) -> Result<Vec<Row>> {
    iter.open()?;
    ctx.add_calls(1);
    let mut rows = Vec::new();
    while let Some(row) = iter.next()? {
        rows.push(row);
    }
    iter.close();
    ctx.add_calls(1);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_counts_by_mode() {
        let generic = ExecContext::new(ExecMode::Generic);
        generic.add_calls(2);
        generic.add_generic_call(3);
        assert_eq!(generic.stats().function_calls, 5);

        let optimized = ExecContext::new(ExecMode::Optimized);
        optimized.add_calls(2);
        optimized.add_generic_call(3);
        assert_eq!(optimized.stats().function_calls, 2);
        assert_eq!(optimized.mode(), ExecMode::Optimized);
    }

    #[test]
    fn context_clone_shares_counters() {
        let ctx = ExecContext::new(ExecMode::Generic);
        let clone = ctx.clone();
        clone.add_tuple(72);
        clone.add_comparisons(4);
        clone.add_hashes(1);
        clone.add_materialized(100);
        clone.add_partition_pass();
        clone.add_sort_pass();
        clone.set_rows_out(9);
        let s = ctx.stats();
        assert_eq!(s.tuples_processed, 1);
        assert_eq!(s.bytes_touched, 72);
        assert_eq!(s.comparisons, 4);
        assert_eq!(s.hash_ops, 1);
        assert_eq!(s.bytes_materialized, 100);
        assert_eq!(s.partition_passes, 1);
        assert_eq!(s.sort_passes, 1);
        assert_eq!(s.rows_out, 9);
    }
}
