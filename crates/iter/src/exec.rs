//! Plan execution: building the iterator pipeline and running it.

use std::rc::Rc;
use std::time::Instant;

use hique_par::ScopedPool;
use hique_pipeline::SpillContext;
use hique_plan::{AggAlgorithm, JoinAlgorithm, PhysicalPlan, StagingStrategy};
use hique_storage::Catalog;
use hique_types::{
    result::finalize_rows, CancelToken, HiqueError, PhaseTimings, QueryResult, Result,
};

use crate::agg::{AggStrategy, AggregateIterator};
use crate::iterator::{ExecContext, ExecMode, QueryIterator};
use crate::join::{HybridJoinIterator, MergeJoinIterator, PartitionJoinIterator};
use crate::project::OutputIterator;
use crate::scan::ScanIterator;
use crate::sort::SortIterator;
use crate::BoxedIterator;

/// Execute a physical plan with the iterator engine.
///
/// `mode` selects between the paper's "generic iterators" and "optimized
/// iterators" implementations.
pub fn execute_plan(plan: &PhysicalPlan, catalog: &Catalog, mode: ExecMode) -> Result<QueryResult> {
    execute_plan_with(plan, catalog, mode, true)
}

/// Like [`execute_plan`], but when `collect_rows` is `false` the final
/// result rows are only counted (`stats.rows_out`), not materialized —
/// matching the paper's micro-benchmark methodology of never materializing
/// query output.  Aggregate results are always collected.
pub fn execute_plan_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    mode: ExecMode,
    collect_rows: bool,
) -> Result<QueryResult> {
    execute_plan_cancellable(plan, catalog, mode, collect_rows, CancelToken::disabled())
}

/// [`execute_plan_with`] under a cancellation token, polled at the engine's
/// page-granularity points (scan page fetches, spilled partition pulls,
/// spill-admission waits, output batches).
pub fn execute_plan_cancellable(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    mode: ExecMode,
    collect_rows: bool,
    cancel: CancelToken,
) -> Result<QueryResult> {
    // The blocking operators (sort runs, partition scatters) honor the
    // plan's worker count through the shared substrate's deterministic
    // fan-out, so `threads = 1 ≡ threads = N` holds for this engine too.
    let pool = ScopedPool::new(plan.threads);
    // Under a memory budget on a paged catalog, sort runs and hash
    // partitions above the threshold spill through the buffer pool (the
    // same size-only policy as the holistic engine).
    let spill: Option<Rc<SpillContext>> =
        match (plan.memory_budget_pages, catalog.storage()) {
            (pages, Some(runtime)) if pages > 0 => Some(Rc::new(
                SpillContext::acquire_cancellable(runtime.temp(), pages, cancel.clone())?,
            )),
            _ => None,
        };
    let ctx = ExecContext::new(mode)
        .with_pool(pool)
        .with_spill(spill.clone())
        .with_cancel(cancel.clone());
    let started = Instant::now();
    let io_base = catalog.pool_stats();
    let faults_base = catalog.faults_injected();
    // Per-execution residency window: peak_resident_pages reports this
    // run's high-water, not the pool's lifetime maximum — and concurrent
    // executions each hold their own window.
    let peak_window = catalog.buffer_pool().map(|p| p.begin_peak_window());

    // ---- Staged inputs ----------------------------------------------------
    let staged_iter = |t: usize, ctx: &ExecContext| -> Result<BoxedIterator<'_>> {
        let st = &plan.staged[t];
        let info = catalog.table(&st.table_name)?;
        let scan: BoxedIterator = Box::new(ScanIterator::new(&info.heap, st.clone(), ctx.clone()));
        Ok(match &st.strategy {
            StagingStrategy::Sort { key_columns } => {
                Box::new(SortIterator::ascending(scan, key_columns, ctx.clone()))
            }
            // Partitioning strategies are realised inside the join/agg
            // iterators themselves.
            _ => scan,
        })
    };

    // ---- Join pipeline -------------------------------------------------------
    let mut current: BoxedIterator = staged_iter(plan.join_order[0], &ctx)?;

    // Either the explicit binary cascade, or a cascade synthesised from the
    // join team (the iterator model has no fused multi-way join — that is
    // precisely the holistic engine's advantage in Figure 7(b)).
    struct Step {
        right: usize,
        left_key: usize,
        right_key: usize,
        algorithm: JoinAlgorithm,
    }
    let steps: Vec<Step> = if let Some(team) = &plan.join_team {
        team.members
            .iter()
            .zip(team.key_columns.iter())
            .skip(1)
            .map(|(&right, &right_key)| Step {
                right,
                left_key: team.key_columns[0],
                right_key,
                algorithm: team.algorithm,
            })
            .collect()
    } else {
        plan.joins
            .iter()
            .map(|j| Step {
                right: j.right,
                left_key: j.left_key,
                right_key: j.right_key,
                algorithm: j.algorithm,
            })
            .collect()
    };

    for (i, step) in steps.iter().enumerate() {
        let right = staged_iter(step.right, &ctx)?;
        current = match step.algorithm {
            JoinAlgorithm::Merge => {
                // Merge join needs the intermediate sorted on the new key.
                // The first step's left input and any merge-join output that
                // is already ordered on the same key can skip the sort.
                let left_sorted_already = i == 0
                    || (plan.join_team.is_some() && i > 0)
                    || matches!(
                        steps.get(i - 1),
                        Some(prev) if prev.algorithm == JoinAlgorithm::Merge
                            && prev.left_key == step.left_key
                    );
                let left: BoxedIterator = if left_sorted_already {
                    current
                } else {
                    Box::new(SortIterator::ascending(
                        current,
                        &[step.left_key],
                        ctx.clone(),
                    ))
                };
                Box::new(MergeJoinIterator::new(
                    left,
                    right,
                    step.left_key,
                    step.right_key,
                    ctx.clone(),
                ))
            }
            JoinAlgorithm::Partition => Box::new(PartitionJoinIterator::new(
                current,
                right,
                step.left_key,
                step.right_key,
                ctx.clone(),
            )),
            JoinAlgorithm::HybridHashSortMerge => {
                let partitions = match &plan.staged[step.right].strategy {
                    StagingStrategy::PartitionThenSort { partitions, .. }
                    | StagingStrategy::PartitionCoarse { partitions, .. } => *partitions,
                    _ => 64,
                };
                Box::new(HybridJoinIterator::new(
                    current,
                    right,
                    step.left_key,
                    step.right_key,
                    partitions,
                    ctx.clone(),
                ))
            }
            JoinAlgorithm::NestedLoops => {
                return Err(HiqueError::Unsupported(
                    "nested-loops cross products are not supported by the iterator engine".into(),
                ))
            }
        };
    }

    // ---- Aggregation -----------------------------------------------------------
    if let Some(spec) = &plan.aggregate {
        let (strategy, child): (AggStrategy, BoxedIterator) = match spec.algorithm {
            AggAlgorithm::Sort => {
                // Sort aggregation requires its input ordered on the group
                // columns; reuse the interesting order when the pipeline
                // already provides it, otherwise sort here.
                let sorted: BoxedIterator = Box::new(SortIterator::ascending(
                    current,
                    &spec.group_columns,
                    ctx.clone(),
                ));
                (AggStrategy::Sort, sorted)
            }
            AggAlgorithm::HybridHashSort => (AggStrategy::HybridHashSort, current),
            AggAlgorithm::Map => (AggStrategy::Map, current),
        };
        current = Box::new(AggregateIterator::new(
            child,
            spec.clone(),
            strategy,
            ctx.clone(),
        ));
    }

    // ---- Output, ordering, limit --------------------------------------------------
    let mut output = OutputIterator::new(current, plan, ctx.clone());
    output.open()?;
    let mut rows = Vec::new();
    let mut counted: u64 = 0;
    let keep_rows = collect_rows || plan.aggregate.is_some();
    while let Some(row) = output.next()? {
        // One check per page-sized batch of output rows keeps deadline
        // tokens (which read the clock) off the per-tuple path.
        if counted.is_multiple_of(256) {
            cancel.check()?;
        }
        counted += 1;
        if keep_rows {
            rows.push(row);
        }
    }
    output.close();
    finalize_rows(&mut rows, &plan.order_by, plan.limit);
    ctx.set_rows_out(if keep_rows {
        rows.len() as u64
    } else {
        counted
    });

    let mut timings = PhaseTimings::new();
    timings.record("total", started.elapsed());
    let mut stats = ctx.stats();
    // Buffer-pool traffic of this execution (zero on memory-resident
    // catalogs).
    stats.io = catalog.pool_stats().since(&io_base);
    if let Some(spill) = &spill {
        stats.spilled_temporaries = spill.spill_count();
        stats.spill_claim_denied = spill.claim_denied();
        stats.spill_consumer_peak_pages = spill.meter().peak() as u64;
    }
    stats.peak_resident_pages = peak_window.map(|w| w.end() as u64).unwrap_or(0);
    stats.faults_injected = catalog.faults_injected().saturating_sub(faults_base);
    Ok(QueryResult {
        schema: plan.output_schema.clone(),
        rows,
        stats,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_plan::{plan_query, CatalogProvider, PlannerConfig};
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
                Column::new("tag", DataType::Char(4)),
            ]),
        )
        .unwrap();
        cat.create_table(
            "s",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("w", DataType::Int32),
            ]),
        )
        .unwrap();
        cat.create_table(
            "u",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("z", DataType::Int32),
            ]),
        )
        .unwrap();
        for i in 0..200 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 20),
                    Value::Float64(i as f64),
                    Value::Str(if i % 2 == 0 { "ev" } else { "od" }.into()),
                ]))
                .unwrap();
        }
        for i in 0..40 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i % 20), Value::Int32(i)]))
                .unwrap();
        }
        for i in 0..20 {
            cat.table_mut("u")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Int32(100 + i)]))
                .unwrap();
        }
        for t in ["r", "s", "u"] {
            cat.analyze_table(t).unwrap();
        }
        cat
    }

    fn run(sql: &str, cat: &Catalog, config: &PlannerConfig, mode: ExecMode) -> QueryResult {
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(cat)).unwrap();
        let plan = plan_query(&bound, cat, config).unwrap();
        execute_plan(&plan, cat, mode).unwrap()
    }

    #[test]
    fn filter_and_projection_query() {
        let cat = catalog();
        let res = run(
            "select v, tag from r where k = 3 and v < 100 order by v",
            &cat,
            &PlannerConfig::default(),
            ExecMode::Generic,
        );
        assert_eq!(res.schema.names(), vec!["v", "tag"]);
        assert_eq!(res.num_rows(), 5); // k=3: v=3,23,43,63,83 (<100)
        assert_eq!(res.rows[0].get(0), &Value::Float64(3.0));
        assert!(res.stats.function_calls > 0);
        assert_eq!(res.stats.rows_out, 5);
    }

    #[test]
    fn join_with_aggregation_and_order() {
        let cat = catalog();
        for algo in [
            JoinAlgorithm::Merge,
            JoinAlgorithm::Partition,
            JoinAlgorithm::HybridHashSortMerge,
        ] {
            let res = run(
                "select r.k, sum(r.v) as sv, count(*) as n from r, s \
                 where r.k = s.k group by r.k order by r.k limit 5",
                &cat,
                &PlannerConfig::default().with_join_algorithm(algo),
                ExecMode::Optimized,
            );
            assert_eq!(res.num_rows(), 5, "{algo:?}");
            // Each r.k matches 2 s rows; r has 10 rows per k.
            assert_eq!(res.rows[0].get(0), &Value::Int32(0));
            assert_eq!(res.rows[0].get(2), &Value::Int64(20));
        }
    }

    #[test]
    fn generic_mode_counts_more_calls_than_optimized() {
        let cat = catalog();
        let sql = "select r.k, sum(r.v) as sv from r, s where r.k = s.k group by r.k";
        let generic = run(sql, &cat, &PlannerConfig::default(), ExecMode::Generic);
        let optimized = run(sql, &cat, &PlannerConfig::default(), ExecMode::Optimized);
        assert_eq!(generic.rows, optimized.rows);
        assert!(generic.stats.function_calls > optimized.stats.function_calls);
    }

    #[test]
    fn three_way_join_team_falls_back_to_cascade() {
        let cat = catalog();
        let sql = "select r.v, s.w, u.z from r, s, u \
                   where r.k = s.k and r.k = u.k order by r.v limit 7";
        let with_team = run(sql, &cat, &PlannerConfig::default(), ExecMode::Optimized);
        let without_team = run(
            sql,
            &cat,
            &PlannerConfig::default().with_join_teams(false),
            ExecMode::Optimized,
        );
        assert_eq!(with_team.rows, without_team.rows);
        assert_eq!(with_team.num_rows(), 7);
    }

    #[test]
    fn aggregation_algorithms_agree_end_to_end() {
        let cat = catalog();
        let sql = "select tag, sum(v) as sv, avg(v) as av, count(*) as n from r group by tag order by tag";
        let mut results = Vec::new();
        for algo in [
            AggAlgorithm::Sort,
            AggAlgorithm::HybridHashSort,
            AggAlgorithm::Map,
        ] {
            results.push(run(
                sql,
                &cat,
                &PlannerConfig::default().with_agg_algorithm(algo),
                ExecMode::Generic,
            ));
        }
        assert_eq!(results[0].rows, results[1].rows);
        assert_eq!(results[0].rows, results[2].rows);
        assert_eq!(results[0].num_rows(), 2);
    }

    #[test]
    fn budgeted_iterator_execution_spills_and_matches_unbounded() {
        // A paged catalog under a tiny budget: merge-join sort runs and
        // hybrid hash partitions spill through the pool, stream back
        // page-at-a-time, and results match the memory-resident run for
        // every thread count.
        const BUDGET: usize = 2;
        let queries_and_configs = [
            (
                "select r.k, sum(r.v) as sv, count(*) as n from r, s \
                 where r.k = s.k group by r.k order by r.k",
                PlannerConfig::default().with_join_algorithm(JoinAlgorithm::Merge),
            ),
            (
                "select r.v, s.w from r, s where r.k = s.k order by r.v, s.w limit 50",
                PlannerConfig::default().with_join_algorithm(JoinAlgorithm::HybridHashSortMerge),
            ),
            (
                "select tag, sum(v) as sv from r group by tag order by tag",
                PlannerConfig::default().with_agg_algorithm(AggAlgorithm::Sort),
            ),
        ];
        let plain = catalog();
        let mut paged = catalog();
        paged.spill_to_disk(BUDGET).unwrap();
        for (sql, config) in queries_and_configs {
            let unbounded = run(sql, &plain, &config, ExecMode::Optimized);
            for threads in [1usize, 4] {
                let budgeted_config = config
                    .clone()
                    .with_threads(threads)
                    .with_memory_budget_pages(BUDGET);
                let budgeted = run(sql, &paged, &budgeted_config, ExecMode::Optimized);
                assert_eq!(budgeted.rows, unbounded.rows, "{sql} x{threads}");
                assert!(
                    budgeted.stats.spilled_temporaries > 0,
                    "{sql} x{threads}: nothing spilled under a {BUDGET}-page budget"
                );
                assert!(
                    budgeted.stats.peak_resident_pages <= BUDGET as u64,
                    "{sql} x{threads}: peak {} > budget {BUDGET}",
                    budgeted.stats.peak_resident_pages
                );
                let io = budgeted.stats.io;
                assert!(io.pool_hits + io.pool_misses > 0, "{sql}: no pool traffic");
                if sql.starts_with("select tag") {
                    // The sort-agg pipeline streams the spilled sort run:
                    // one page of decoded rows resident at a time, never the
                    // whole run.
                    assert_eq!(
                        budgeted.stats.spill_consumer_peak_pages, 1,
                        "{sql} x{threads}: sorted-run emit re-materialized the run"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_iterator_execution_matches_serial() {
        let cat = catalog();
        let queries = [
            "select v, tag from r where k = 3 and v < 100 order by v",
            "select r.k, sum(r.v) as sv, count(*) as n from r, s \
             where r.k = s.k group by r.k order by r.k limit 5",
            "select r.v, s.w, u.z from r, s, u \
             where r.k = s.k and r.k = u.k order by r.v, s.w limit 11",
            "select tag, sum(v) as sv, avg(v) as av from r group by tag order by tag",
        ];
        let mut configs = vec![PlannerConfig::default()];
        for join in [
            JoinAlgorithm::Merge,
            JoinAlgorithm::Partition,
            JoinAlgorithm::HybridHashSortMerge,
        ] {
            configs.push(PlannerConfig::default().with_join_algorithm(join));
        }
        for agg in [
            AggAlgorithm::Sort,
            AggAlgorithm::HybridHashSort,
            AggAlgorithm::Map,
        ] {
            configs.push(PlannerConfig::default().with_agg_algorithm(agg));
        }
        for sql in queries {
            for config in &configs {
                for mode in [ExecMode::Generic, ExecMode::Optimized] {
                    let serial = run(sql, &cat, &config.clone().with_threads(1), mode);
                    for threads in [2, 4] {
                        let par = run(sql, &cat, &config.clone().with_threads(threads), mode);
                        assert_eq!(par.rows, serial.rows, "{sql} / {config:?} x{threads}");
                        // The blocking operators derive their counters from
                        // totals, so the full counter set matches serial.
                        assert_eq!(par.stats, serial.stats, "{sql} / {config:?} x{threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn cancelled_iterator_execution_surfaces_a_typed_error() {
        let cat = catalog();
        let q = hique_sql::parse_query("select r.v, s.w from r, s where r.k = s.k").unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(&cat)).unwrap();
        let plan = plan_query(&bound, &cat, &PlannerConfig::default()).unwrap();
        for mode in [ExecMode::Generic, ExecMode::Optimized] {
            let cancel = CancelToken::new();
            cancel.cancel();
            let err = execute_plan_cancellable(&plan, &cat, mode, true, cancel).unwrap_err();
            assert!(matches!(err, HiqueError::Cancelled(_)), "{mode:?}: {err}");
            let ok = execute_plan_cancellable(
                &plan,
                &cat,
                mode,
                true,
                CancelToken::with_deadline(std::time::Duration::from_secs(3600)),
            )
            .unwrap();
            assert_eq!(ok.stats.cancelled, 0, "{mode:?}");
        }
    }

    #[test]
    fn global_aggregate() {
        let cat = catalog();
        let res = run(
            "select count(*) as n, min(v) as mn, max(v) as mx from r where tag = 'ev'",
            &cat,
            &PlannerConfig::default(),
            ExecMode::Optimized,
        );
        assert_eq!(res.num_rows(), 1);
        assert_eq!(res.rows[0].get(0), &Value::Int64(100));
        assert_eq!(res.rows[0].get(1), &Value::Float64(0.0));
        assert_eq!(res.rows[0].get(2), &Value::Float64(198.0));
    }
}
