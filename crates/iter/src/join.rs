//! Join iterators: merge join, hybrid hash-sort-merge join and fine
//! partition join.
//!
//! All three implement the same logical equi-join; they differ in how they
//! stage their inputs, mirroring the paper's observation that every join
//! algorithm instantiates the same nested-loops template with different
//! staging.  In the iterator engine each output tuple still travels through
//! a `next()` call and is materialized as a `Row`, which is the overhead the
//! holistic engine eliminates.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use hique_types::{result::sort_rows, Result, Row, Schema};

use crate::iterator::{ExecContext, QueryIterator};
use crate::spill::SpilledRows;
use crate::BoxedIterator;

/// Shared merge cursor: walks two key-sorted row vectors and yields joined
/// rows, backtracking over groups of equal inner keys (paper Listing 2's
/// merge-join bound updates).
struct MergeCursor {
    left: Vec<Row>,
    right: Vec<Row>,
    left_key: usize,
    right_key: usize,
    li: usize,
    rj: usize,
    group_start: usize,
    in_group: bool,
}

impl MergeCursor {
    fn new(left: Vec<Row>, right: Vec<Row>, left_key: usize, right_key: usize) -> Self {
        MergeCursor {
            left,
            right,
            left_key,
            right_key,
            li: 0,
            rj: 0,
            group_start: 0,
            in_group: false,
        }
    }

    fn next_pair(&mut self, ctx: &ExecContext) -> Option<Row> {
        loop {
            if self.li >= self.left.len() {
                return None;
            }
            if self.in_group {
                let group_ended = self.rj >= self.right.len() || {
                    ctx.add_comparisons(1);
                    ctx.add_generic_call(2);
                    self.left[self.li]
                        .get(self.left_key)
                        .total_cmp(self.right[self.rj].get(self.right_key))
                        != std::cmp::Ordering::Equal
                };
                if group_ended {
                    // Advance the outer tuple and backtrack to the start of
                    // the group of matching inner tuples.
                    self.li += 1;
                    self.rj = self.group_start;
                    self.in_group = false;
                    continue;
                }
                let out = self.left[self.li].concat(&self.right[self.rj]);
                self.rj += 1;
                return Some(out);
            }
            if self.rj >= self.right.len() {
                return None;
            }
            ctx.add_comparisons(1);
            ctx.add_generic_call(2);
            match self.left[self.li]
                .get(self.left_key)
                .total_cmp(self.right[self.rj].get(self.right_key))
            {
                std::cmp::Ordering::Less => self.li += 1,
                std::cmp::Ordering::Greater => self.rj += 1,
                std::cmp::Ordering::Equal => {
                    self.group_start = self.rj;
                    self.in_group = true;
                }
            }
        }
    }
}

fn drain_child<'a>(
    child: &mut BoxedIterator<'a>,
    ctx: &ExecContext,
    schema_width: usize,
) -> Result<Vec<Row>> {
    child.open()?;
    ctx.add_calls(1);
    let mut rows = Vec::new();
    while let Some(r) = child.next()? {
        ctx.add_materialized(schema_width);
        rows.push(r);
    }
    child.close();
    ctx.add_calls(1);
    Ok(rows)
}

/// Merge join over inputs already sorted on the join keys.
pub struct MergeJoinIterator<'a> {
    left: BoxedIterator<'a>,
    right: BoxedIterator<'a>,
    left_key: usize,
    right_key: usize,
    ctx: ExecContext,
    cursor: Option<MergeCursor>,
    schema: Schema,
}

impl<'a> MergeJoinIterator<'a> {
    /// Join `left` and `right` (both sorted on their key columns).
    pub fn new(
        left: BoxedIterator<'a>,
        right: BoxedIterator<'a>,
        left_key: usize,
        right_key: usize,
        ctx: ExecContext,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        MergeJoinIterator {
            left,
            right,
            left_key,
            right_key,
            ctx,
            cursor: None,
            schema,
        }
    }
}

impl QueryIterator for MergeJoinIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        let lw = self.left.schema().tuple_size();
        let rw = self.right.schema().tuple_size();
        let left = drain_child(&mut self.left, &self.ctx, lw)?;
        let right = drain_child(&mut self.right, &self.ctx, rw)?;
        self.cursor = Some(MergeCursor::new(left, right, self.left_key, self.right_key));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        Ok(self.cursor.as_mut().and_then(|c| c.next_pair(&self.ctx)))
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.cursor = None;
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// One side's hash partitions: resident row vectors, or runs spilled
/// through the buffer pool and reloaded one partition pair at a time.
enum PartStore {
    Rows(Vec<Vec<Row>>),
    Spilled(Vec<SpilledRows>),
}

impl PartStore {
    fn is_partition_empty(&self, p: usize) -> bool {
        match self {
            PartStore::Rows(parts) => parts[p].is_empty(),
            PartStore::Spilled(runs) => runs[p].num_rows() == 0,
        }
    }

    /// Take partition `p` out for its merge (spilled runs decode through
    /// pin guards here — one partition pair resident at a time).
    fn take_partition(&mut self, p: usize, ctx: &ExecContext) -> Result<Vec<Row>> {
        match self {
            PartStore::Rows(parts) => Ok(std::mem::take(&mut parts[p])),
            PartStore::Spilled(runs) => {
                let spill = ctx
                    .spill()
                    .expect("spilled partitions require an active spill context");
                runs[p].load(spill)
            }
        }
    }
}

/// Hybrid hash-sort-merge join: both inputs are hash-partitioned on the join
/// key, each pair of corresponding partitions is sorted just before being
/// merge-joined (paper §V-B).
///
/// The scatter pass runs chunk-parallel across the context's pool with the
/// deterministic chunk-order merge, so every pool width produces the serial
/// partition contents.  Under a memory budget a side larger than the spill
/// threshold writes its partitions through the buffer pool after the
/// scatter; `advance_partition` then reloads exactly one partition pair at
/// a time — the join's peak resident set shrinks from both inputs to one
/// cache-sized pair.
pub struct HybridJoinIterator<'a> {
    left: BoxedIterator<'a>,
    right: BoxedIterator<'a>,
    left_key: usize,
    right_key: usize,
    partitions: usize,
    ctx: ExecContext,
    left_parts: PartStore,
    right_parts: PartStore,
    current: usize,
    cursor: Option<MergeCursor>,
    schema: Schema,
}

impl<'a> HybridJoinIterator<'a> {
    /// Join `left` and `right` using `partitions` hash partitions.
    pub fn new(
        left: BoxedIterator<'a>,
        right: BoxedIterator<'a>,
        left_key: usize,
        right_key: usize,
        partitions: usize,
        ctx: ExecContext,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        HybridJoinIterator {
            left,
            right,
            left_key,
            right_key,
            partitions: partitions.max(1),
            ctx,
            left_parts: PartStore::Rows(Vec::new()),
            right_parts: PartStore::Rows(Vec::new()),
            current: 0,
            cursor: None,
            schema,
        }
    }

    /// Hash-scatter `rows` into `partitions` buckets, chunk-parallel across
    /// the context's pool: each worker scatters a contiguous chunk and the
    /// per-chunk buckets concatenate in chunk order, reproducing the serial
    /// scatter order for any pool width.
    fn partition(
        rows: Vec<Row>,
        key: usize,
        partitions: usize,
        ctx: &ExecContext,
    ) -> Vec<Vec<Row>> {
        ctx.add_partition_pass();
        ctx.add_hashes(rows.len() as u64);
        let hash_of = |row: &Row| {
            let mut h = DefaultHasher::new();
            row.get(key).hash(&mut h);
            (h.finish() as usize) % partitions
        };
        let pool = ctx.pool();
        if pool.is_serial() || rows.len() <= 1 {
            let mut parts = vec![Vec::new(); partitions];
            for row in rows {
                let p = hash_of(&row);
                parts[p].push(row);
            }
            return parts;
        }
        let ranges = hique_par::chunk_ranges(rows.len(), pool.threads());
        let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(ranges.len());
        let mut it = rows.into_iter();
        for r in &ranges {
            chunks.push(it.by_ref().take(r.len()).collect());
        }
        let locals: Vec<Vec<Vec<Row>>> = pool.map_owned(chunks, |_, chunk| {
            let mut parts = vec![Vec::new(); partitions];
            for row in chunk {
                let p = hash_of(&row);
                parts[p].push(row);
            }
            parts
        });
        let mut parts: Vec<Vec<Row>> = vec![Vec::new(); partitions];
        for local in locals {
            for (bucket, mut rows) in parts.iter_mut().zip(local) {
                bucket.append(&mut rows);
            }
        }
        parts
    }

    /// Wrap one side's partitions, spilling them through the pool when the
    /// side exceeds the spill threshold (size-only decision).
    fn store_side(parts: Vec<Vec<Row>>, schema: &Schema, ctx: &ExecContext) -> Result<PartStore> {
        let bytes: usize = parts.iter().map(|p| p.len()).sum::<usize>() * schema.tuple_size();
        match ctx.spill() {
            Some(spill) if spill.should_spill(bytes) => {
                let runs: Vec<SpilledRows> = parts
                    .iter()
                    .map(|p| SpilledRows::spill(p, schema, spill))
                    .collect::<Result<_>>()?;
                Ok(PartStore::Spilled(runs))
            }
            _ => Ok(PartStore::Rows(parts)),
        }
    }

    fn advance_partition(&mut self) -> Result<bool> {
        while self.current < self.partitions {
            let k = self.current;
            self.current += 1;
            if self.left_parts.is_partition_empty(k) || self.right_parts.is_partition_empty(k) {
                continue;
            }
            let mut l = self.left_parts.take_partition(k, &self.ctx)?;
            let mut r = self.right_parts.take_partition(k, &self.ctx)?;
            // Sort the pair of corresponding partitions just before joining
            // them so both are cache-resident during the merge.
            self.ctx.add_sort_pass();
            self.ctx.add_sort_pass();
            let lk = self.left_key;
            let rk = self.right_key;
            sort_rows(&mut l, &[(lk, true)]);
            sort_rows(&mut r, &[(rk, true)]);
            self.cursor = Some(MergeCursor::new(l, r, lk, rk));
            return Ok(true);
        }
        Ok(false)
    }
}

impl QueryIterator for HybridJoinIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        let lschema = self.left.schema().clone();
        let rschema = self.right.schema().clone();
        let left = drain_child(&mut self.left, &self.ctx, lschema.tuple_size())?;
        let right = drain_child(&mut self.right, &self.ctx, rschema.tuple_size())?;
        let left_parts = Self::partition(left, self.left_key, self.partitions, &self.ctx);
        let right_parts = Self::partition(right, self.right_key, self.partitions, &self.ctx);
        self.left_parts = Self::store_side(left_parts, &lschema, &self.ctx)?;
        self.right_parts = Self::store_side(right_parts, &rschema, &self.ctx)?;
        self.current = 0;
        self.cursor = None;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        loop {
            if let Some(cursor) = self.cursor.as_mut() {
                if let Some(row) = cursor.next_pair(&self.ctx) {
                    return Ok(Some(row));
                }
                self.cursor = None;
            }
            if !self.advance_partition()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.left_parts = PartStore::Rows(Vec::new());
        self.right_parts = PartStore::Rows(Vec::new());
        self.cursor = None;
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// Fine-grained partition join: inputs are partitioned by join-key *value*,
/// so every pair of tuples in corresponding partitions joins (paper §V-B).
pub struct PartitionJoinIterator<'a> {
    left: BoxedIterator<'a>,
    right: BoxedIterator<'a>,
    left_key: usize,
    right_key: usize,
    ctx: ExecContext,
    /// (left rows, right rows) per join-key value present on both sides.
    groups: Vec<(Vec<Row>, Vec<Row>)>,
    gi: usize,
    li: usize,
    rj: usize,
    schema: Schema,
}

impl<'a> PartitionJoinIterator<'a> {
    /// Join `left` and `right` by partitioning on the key value.
    pub fn new(
        left: BoxedIterator<'a>,
        right: BoxedIterator<'a>,
        left_key: usize,
        right_key: usize,
        ctx: ExecContext,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        PartitionJoinIterator {
            left,
            right,
            left_key,
            right_key,
            ctx,
            groups: Vec::new(),
            gi: 0,
            li: 0,
            rj: 0,
            schema,
        }
    }
}

impl QueryIterator for PartitionJoinIterator<'_> {
    fn open(&mut self) -> Result<()> {
        self.ctx.add_calls(1);
        let lw = self.left.schema().tuple_size();
        let rw = self.right.schema().tuple_size();
        let left = drain_child(&mut self.left, &self.ctx, lw)?;
        let right = drain_child(&mut self.right, &self.ctx, rw)?;
        self.ctx.add_partition_pass();
        self.ctx.add_partition_pass();
        let mut lmap: BTreeMap<hique_types::Value, Vec<Row>> = BTreeMap::new();
        for r in left {
            self.ctx.add_hashes(1);
            lmap.entry(r.get(self.left_key).clone())
                .or_default()
                .push(r);
        }
        let mut rmap: BTreeMap<hique_types::Value, Vec<Row>> = BTreeMap::new();
        for r in right {
            self.ctx.add_hashes(1);
            rmap.entry(r.get(self.right_key).clone())
                .or_default()
                .push(r);
        }
        self.groups = lmap
            .into_iter()
            .filter_map(|(k, lrows)| rmap.remove(&k).map(|rrows| (lrows, rrows)))
            .collect();
        self.gi = 0;
        self.li = 0;
        self.rj = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.ctx.add_calls(2);
        loop {
            if self.gi >= self.groups.len() {
                return Ok(None);
            }
            let (lrows, rrows) = &self.groups[self.gi];
            if self.li >= lrows.len() {
                self.gi += 1;
                self.li = 0;
                self.rj = 0;
                continue;
            }
            if self.rj >= rrows.len() {
                self.li += 1;
                self.rj = 0;
                continue;
            }
            let out = lrows[self.li].concat(&rrows[self.rj]);
            self.rj += 1;
            return Ok(Some(out));
        }
    }

    fn close(&mut self) {
        self.ctx.add_calls(1);
        self.groups.clear();
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::{drain, ExecMode};
    use crate::scan::ScanIterator;
    use crate::sort::SortIterator;
    use hique_plan::{StagedTable, StagingStrategy};
    use hique_storage::TableHeap;
    use hique_types::{Column, DataType, Value};

    fn heap_from(keys: &[i32], payload_base: i32) -> TableHeap {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("p", DataType::Int32),
        ]);
        TableHeap::from_rows(
            schema,
            keys.iter().enumerate().map(|(i, &k)| {
                Row::new(vec![Value::Int32(k), Value::Int32(payload_base + i as i32)])
            }),
        )
        .unwrap()
    }

    fn scan<'a>(heap: &'a TableHeap, ctx: &ExecContext) -> BoxedIterator<'a> {
        let staged = StagedTable {
            table: 0,
            table_name: "t".into(),
            filters: vec![],
            keep: vec![0, 1],
            schema: heap.schema().clone(),
            strategy: StagingStrategy::None,
            estimated_rows: 0,
        };
        Box::new(ScanIterator::new(heap, staged, ctx.clone()))
    }

    fn sorted_scan<'a>(heap: &'a TableHeap, ctx: &ExecContext) -> BoxedIterator<'a> {
        Box::new(SortIterator::ascending(scan(heap, ctx), &[0], ctx.clone()))
    }

    /// Expected join size computed naively.
    fn expected_pairs(l: &[i32], r: &[i32]) -> usize {
        l.iter()
            .map(|lk| r.iter().filter(|rk| *rk == lk).count())
            .sum()
    }

    #[test]
    fn merge_join_matches_nested_loops_semantics() {
        let lkeys = vec![1, 2, 2, 3, 5, 7, 7, 7];
        let rkeys = vec![2, 2, 3, 3, 4, 7];
        let lheap = heap_from(&lkeys, 100);
        let rheap = heap_from(&rkeys, 200);
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut join = MergeJoinIterator::new(
            sorted_scan(&lheap, &ctx),
            sorted_scan(&rheap, &ctx),
            0,
            0,
            ctx.clone(),
        );
        let rows = drain(&mut join, &ctx).unwrap();
        assert_eq!(rows.len(), expected_pairs(&lkeys, &rkeys));
        // Every output row has equal keys on both sides.
        assert!(rows.iter().all(|r| r.get(0) == r.get(2)));
        assert_eq!(join.schema().len(), 4);
    }

    #[test]
    fn merge_join_empty_inputs() {
        let lheap = heap_from(&[], 0);
        let rheap = heap_from(&[1, 2], 0);
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut join = MergeJoinIterator::new(
            sorted_scan(&lheap, &ctx),
            sorted_scan(&rheap, &ctx),
            0,
            0,
            ctx.clone(),
        );
        assert!(drain(&mut join, &ctx).unwrap().is_empty());
    }

    #[test]
    fn hybrid_join_agrees_with_merge_join() {
        let lkeys: Vec<i32> = (0..500).map(|i| i % 50).collect();
        let rkeys: Vec<i32> = (0..200).map(|i| (i * 3) % 60).collect();
        let lheap = heap_from(&lkeys, 0);
        let rheap = heap_from(&rkeys, 1000);
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut hybrid =
            HybridJoinIterator::new(scan(&lheap, &ctx), scan(&rheap, &ctx), 0, 0, 8, ctx.clone());
        let mut rows = drain(&mut hybrid, &ctx).unwrap();
        assert_eq!(rows.len(), expected_pairs(&lkeys, &rkeys));
        assert!(ctx.stats().hash_ops >= 700);
        assert!(ctx.stats().partition_passes >= 2);

        let ctx2 = ExecContext::new(ExecMode::Optimized);
        let mut merge = MergeJoinIterator::new(
            sorted_scan(&lheap, &ctx2),
            sorted_scan(&rheap, &ctx2),
            0,
            0,
            ctx2.clone(),
        );
        let mut expected = drain(&mut merge, &ctx2).unwrap();
        // Same multiset of joined rows.
        sort_rows(&mut rows, &[(0, true), (1, true), (3, true)]);
        sort_rows(&mut expected, &[(0, true), (1, true), (3, true)]);
        assert_eq!(rows, expected);
    }

    #[test]
    fn partition_join_handles_duplicates_on_both_sides() {
        let lkeys = vec![1, 1, 2, 3, 3, 3];
        let rkeys = vec![1, 3, 3, 4];
        let lheap = heap_from(&lkeys, 0);
        let rheap = heap_from(&rkeys, 50);
        let ctx = ExecContext::new(ExecMode::Generic);
        let mut join =
            PartitionJoinIterator::new(scan(&lheap, &ctx), scan(&rheap, &ctx), 0, 0, ctx.clone());
        let rows = drain(&mut join, &ctx).unwrap();
        assert_eq!(rows.len(), expected_pairs(&lkeys, &rkeys));
        assert!(rows.iter().all(|r| r.get(0) == r.get(2)));
    }

    #[test]
    fn single_partition_hybrid_still_correct() {
        let lkeys = vec![5, 1, 3];
        let rkeys = vec![3, 3, 5];
        let lheap = heap_from(&lkeys, 0);
        let rheap = heap_from(&rkeys, 0);
        let ctx = ExecContext::new(ExecMode::Optimized);
        let mut join =
            HybridJoinIterator::new(scan(&lheap, &ctx), scan(&rheap, &ctx), 0, 0, 1, ctx.clone());
        let rows = drain(&mut join, &ctx).unwrap();
        assert_eq!(rows.len(), 3);
    }
}
