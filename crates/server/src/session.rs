//! Server and session: concurrent query execution over one shared catalog.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hique_dsm::DsmDatabase;
use hique_holistic::{ExecOptions, GeneratedQuery};
use hique_plan::{plan_query, shape_class_and_consts, shape_key, CatalogProvider, PlannerConfig};
use hique_storage::Catalog;
use hique_types::{CancelToken, HiqueError, QueryResult, Result};
use hique_vm::VmProgram;
use parking_lot::Mutex;

use crate::cache::{CacheStats, Lookup, PlanCache, PreparedQuery};

/// Which engine mode a session executes on.  All five share the catalog,
/// the cached plan and the spill/peak-window contracts; the differential
/// harness relies on their results being canonically identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Holistic generated kernels (the paper's engine).
    Holistic,
    /// Generic Volcano iterators.
    IterGeneric,
    /// Type-specialized iterators.
    IterOptimized,
    /// Column-at-a-time DSM engine.
    Dsm,
    /// Query-time-compiled bytecode interpreted by the register VM.
    Vm,
}

impl Engine {
    /// Every engine mode, in the canonical differential-test order.
    pub const ALL: [Engine; 5] = [
        Engine::Holistic,
        Engine::IterGeneric,
        Engine::IterOptimized,
        Engine::Dsm,
        Engine::Vm,
    ];

    /// Stable lowercase name (wire protocol `.engine` argument).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Holistic => "holistic",
            Engine::IterGeneric => "iter-generic",
            Engine::IterOptimized => "iter-optimized",
            Engine::Dsm => "dsm",
            Engine::Vm => "vm",
        }
    }

    /// Parse a wire-protocol engine name.
    pub fn parse(name: &str) -> Result<Engine> {
        Engine::ALL
            .into_iter()
            .find(|e| e.name() == name)
            .ok_or_else(|| {
                HiqueError::Unsupported(format!(
                    "unknown engine '{name}' (expected one of: holistic, iter-generic, \
                     iter-optimized, dsm, vm)"
                ))
            })
    }
}

/// Server sizing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently admitted spill claims — set on the catalog's
    /// [`hique_storage::TempSpace`] so the spill budget is split by
    /// admission control instead of raced for.  Sessions beyond this count
    /// still execute; their budgeted queries queue at the spill claim.
    pub max_sessions: usize,
    /// Worker threads per query (the planner's fan-out).
    pub threads: usize,
    /// Memory budget handed to every session's plans, in buffer-pool
    /// pages.  `0` means "the catalog's pool capacity when paged, else
    /// unbudgeted" — the shared pool *is* the session budget, and the
    /// per-execution peak window proves each run stayed within it.
    pub memory_budget_pages: usize,
    /// Prepared-plan cache entries.
    pub plan_cache_capacity: usize,
    /// Force every join to this algorithm (benchmarks and tests only —
    /// e.g. `NestedLoops`, which the bytecode VM refuses with a typed
    /// `Unsupported`, exercises the vm engine's holistic fallback).
    pub force_join_algorithm: Option<hique_plan::JoinAlgorithm>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 8,
            threads: 1,
            memory_budget_pages: 0,
            plan_cache_capacity: 256,
            force_join_algorithm: None,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) catalog: Catalog,
    pub(crate) dsm: DsmDatabase,
    pub(crate) cache: PlanCache,
    pub(crate) planner: PlannerConfig,
    pub(crate) config: ServerConfig,
    session_seq: AtomicU64,
    queries_served: AtomicU64,
    queries_cancelled: AtomicU64,
    /// `engine=vm` statements that transparently executed on the holistic
    /// engine because the plan has no bytecode lowering (or the VM refused
    /// it at runtime).  The reply is identical either way; this counter is
    /// the only externally visible trace of the degradation.
    vm_fallbacks: AtomicU64,
    /// Cancellation tokens of queries currently executing, keyed by session
    /// id (one in-flight statement per session).  [`Server::cancel_all`]
    /// fires every one of them, which is how drain-on-shutdown stops
    /// in-flight work without tearing connections down mid-response.
    inflight: Mutex<HashMap<u64, CancelToken>>,
}

/// RAII registration of one executing query's token in the server's
/// in-flight table; removed even when execution unwinds through `?`.
struct InflightGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.shared.inflight.lock().remove(&self.id);
    }
}

/// A long-lived query service: one catalog + buffer pool + plan cache,
/// any number of concurrent [`Session`]s.  Cloning is cheap (shared
/// handle); the catalog is immutable once the server owns it, which is
/// what makes lock-free concurrent reads sound.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Build a server over `catalog`.  When the catalog runs in paged mode
    /// the spill admission cap is set to `config.max_sessions` and the
    /// default session budget is the pool capacity.
    pub fn new(catalog: Catalog, config: ServerConfig) -> Result<Server> {
        let budget = if config.memory_budget_pages != 0 {
            config.memory_budget_pages
        } else {
            catalog.buffer_pool().map(|p| p.capacity()).unwrap_or(0)
        };
        if let Some(runtime) = catalog.storage() {
            runtime.temp().set_max_claims(config.max_sessions.max(1));
        }
        let dsm = DsmDatabase::from_catalog(&catalog)?;
        let mut planner = PlannerConfig::default()
            .with_threads(config.threads.max(1))
            .with_memory_budget_pages(budget);
        planner.force_join_algorithm = config.force_join_algorithm;
        Ok(Server {
            shared: Arc::new(Shared {
                catalog,
                dsm,
                cache: PlanCache::new(config.plan_cache_capacity),
                planner,
                config,
                session_seq: AtomicU64::new(0),
                queries_served: AtomicU64::new(0),
                queries_cancelled: AtomicU64::new(0),
                vm_fallbacks: AtomicU64::new(0),
                inflight: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Open a session (default engine: holistic, no statement timeout).
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            id: self.shared.session_seq.fetch_add(1, Ordering::Relaxed),
            engine: Engine::Holistic,
            timeout: None,
        }
    }

    /// Cancel every query currently executing (drain-on-shutdown): each
    /// in-flight statement stops at its next cooperative check point and
    /// surfaces a typed `cancelled` error to its client.
    pub fn cancel_all(&self) {
        for token in self.shared.inflight.lock().values() {
            token.cancel();
        }
    }

    /// Queries that ended in cooperative cancellation (deadline or
    /// [`Server::cancel_all`]) since startup.
    pub fn queries_cancelled(&self) -> u64 {
        self.shared.queries_cancelled.load(Ordering::Relaxed)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Plan-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The sizing configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Queries executed across all sessions since startup.
    pub fn queries_served(&self) -> u64 {
        self.shared.queries_served.load(Ordering::Relaxed)
    }

    /// `engine=vm` statements that transparently degraded to the holistic
    /// engine (no bytecode lowering for the plan).
    pub fn vm_fallbacks(&self) -> u64 {
        self.shared.vm_fallbacks.load(Ordering::Relaxed)
    }
}

/// One client's handle on a [`Server`]: prepares through the shared plan
/// cache and executes on its selected engine.  Sessions are `Send` — each
/// client thread owns one — and any number run concurrently.
pub struct Session {
    shared: Arc<Shared>,
    id: u64,
    engine: Engine,
    /// Per-statement deadline (`.timeout` wire command); `None` means no
    /// deadline, though the statement's token still observes
    /// [`Server::cancel_all`].
    timeout: Option<Duration>,
}

impl Session {
    /// Server-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine [`Session::execute`] runs on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Select the engine for subsequent [`Session::execute`] calls.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Set (or with `None` clear) the per-statement execution deadline.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// The current per-statement deadline.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Prepare `sql` through the shared cache: returns the prepared
    /// artifact and whether it was a cache hit.  An exact hit (same class,
    /// same constants) reuses the cached artifact outright.  A template
    /// hit (literal-varying classmate) re-plans with this query's exact
    /// constants but rebinds the cached pooled bytecode template instead
    /// of lowering from scratch.  A miss pays the full parse → analyze →
    /// plan → generate → compile cost (the paper's Table III preparation)
    /// and publishes the result for every other session.
    pub fn prepare(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        let (class, consts) = shape_class_and_consts(sql);
        let template = match self.shared.cache.lookup(&class, &consts) {
            Lookup::Exact(prepared) => return Ok((prepared, true)),
            Lookup::Template(prepared) => Some(prepared),
            Lookup::Miss => None,
        };
        let query = hique_sql::parse_query(sql)?;
        let bound = hique_sql::analyze(&query, &CatalogProvider::new(&self.shared.catalog))?;
        let plan = plan_query(&bound, &self.shared.catalog, &self.shared.planner)?;
        let generated = hique_holistic::generate(&plan)?;
        let (vm, vm_template) = compile_vm(
            &generated,
            &self.shared.catalog,
            template.as_ref().and_then(|t| t.vm_template.as_ref()),
        );
        let hit = template.is_some();
        let prepared = Arc::new(PreparedQuery {
            shape: shape_key(sql),
            class,
            consts,
            generated,
            vm,
            vm_template,
        });
        self.shared.cache.insert(Arc::clone(&prepared));
        Ok((prepared, hit))
    }

    /// Prepare (through the cache) and execute on the session's engine.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute_on(sql, self.engine)
    }

    /// Prepare (through the cache) and execute on an explicit engine.
    ///
    /// The statement runs under a live [`CancelToken`] — with the session's
    /// deadline when one is set — registered in the server's in-flight
    /// table for the duration, so [`Server::cancel_all`] reaches it.  A
    /// cancelled statement returns the typed [`HiqueError::Cancelled`] and
    /// is counted in [`Server::queries_cancelled`]; its claims, pins and
    /// temp files unwind through the ordinary error path.
    pub fn execute_on(&mut self, sql: &str, engine: Engine) -> Result<QueryResult> {
        let (prepared, _hit) = self.prepare(sql)?;
        let cancel = match self.timeout {
            Some(timeout) => CancelToken::with_deadline(timeout),
            None => CancelToken::new(),
        };
        let _inflight = {
            self.shared.inflight.lock().insert(self.id, cancel.clone());
            InflightGuard {
                shared: Arc::clone(&self.shared),
                id: self.id,
            }
        };
        let result = match engine {
            Engine::Holistic => prepared.generated.execute_with(
                &self.shared.catalog,
                &ExecOptions {
                    cancel: cancel.clone(),
                    ..ExecOptions::default()
                },
            ),
            Engine::IterGeneric => hique_iter::execute_plan_cancellable(
                prepared.plan(),
                &self.shared.catalog,
                hique_iter::ExecMode::Generic,
                true,
                cancel.clone(),
            ),
            Engine::IterOptimized => hique_iter::execute_plan_cancellable(
                prepared.plan(),
                &self.shared.catalog,
                hique_iter::ExecMode::Optimized,
                true,
                cancel.clone(),
            ),
            Engine::Dsm => hique_dsm::execute_plan_cancellable(
                prepared.plan(),
                &self.shared.dsm,
                cancel.clone(),
            ),
            // Bytecode when the plan lowered; otherwise degrade gracefully
            // to the holistic engine the bytecode was rendered from — the
            // reply is identical (the differential harness proves it), and
            // the degradation is visible only as `vm_fallbacks` in `.stats`.
            Engine::Vm => {
                let options = ExecOptions {
                    cancel: cancel.clone(),
                    ..ExecOptions::default()
                };
                let fallback = |e: HiqueError| match e {
                    HiqueError::Unsupported(_) => {
                        self.shared.vm_fallbacks.fetch_add(1, Ordering::Relaxed);
                        prepared
                            .generated
                            .execute_with(&self.shared.catalog, &options)
                    }
                    other => Err(other),
                };
                match prepared.vm.as_ref() {
                    Some(program) => program
                        .execute(&prepared.generated, &self.shared.catalog, &options)
                        .or_else(fallback),
                    None => fallback(HiqueError::Unsupported(
                        "query has no bytecode lowering (vm engine)".into(),
                    )),
                }
            }
        };
        match result {
            Ok(result) => {
                self.shared.queries_served.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            Err(e) => {
                if matches!(e, HiqueError::Cancelled(_)) {
                    self.shared
                        .queries_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

/// Lower `generated` to bytecode for the `vm` engine.  When a classmate's
/// pooled template is available, rebinding it (swap the constant pool,
/// fold to immediates) replaces the full lowering; if the rebind reports a
/// shape mismatch — a literal shifted the chosen join order — we fall back
/// to a fresh compile.  Bytecode is an engine mode, not a prerequisite:
/// a plan without a lowering still prepares (`vm: None`) and executes on
/// the other four engines.
fn compile_vm(
    generated: &GeneratedQuery,
    catalog: &Catalog,
    template: Option<&Arc<VmProgram>>,
) -> (Option<VmProgram>, Option<Arc<VmProgram>>) {
    if let Some(template) = template {
        if let Ok(vm) = template.bind(generated, catalog) {
            return (Some(vm), Some(Arc::clone(template)));
        }
    }
    match hique_vm::compile(generated, catalog, hique_vm::CompileMode::Pooled) {
        Ok(pooled) => {
            let vm = pooled.bind(generated, catalog).ok();
            (vm, Some(Arc::new(pooled)))
        }
        Err(_) => (None, None),
    }
}

// Sessions are handed to client threads; the whole stack under them
// (catalog, heaps, pool, DSM columns, cached kernels) must be shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<Session>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn catalog(rows: i32) -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..rows {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 10),
                    Value::Float64(i as f64),
                ]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat
    }

    #[test]
    fn sessions_share_the_plan_cache_across_engines() {
        let server = Server::new(catalog(200), ServerConfig::default()).unwrap();
        let mut s1 = server.session();
        let mut s2 = server.session();
        assert_ne!(s1.id(), s2.id());
        let sql = "select k, count(*) as n from r group by k order by k";
        let a = s1.execute(sql).unwrap();
        // Same shape from another session and another engine: cache hit,
        // identical rows.
        let b = s2
            .execute_on(
                "SELECT k, COUNT(*) AS n FROM r GROUP BY k ORDER BY k",
                Engine::IterOptimized,
            )
            .unwrap();
        assert_eq!(a.rows, b.rows);
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert!(stats.hits >= 1, "{stats:?}");
        assert_eq!(server.queries_served(), 2);
    }

    #[test]
    fn all_engines_agree_through_sessions() {
        let server = Server::new(catalog(500), ServerConfig::default()).unwrap();
        let sql = "select k, sum(v) as sv from r where v < 400 group by k order by k";
        let mut results = Vec::new();
        for engine in Engine::ALL {
            let mut s = server.session();
            results.push(s.execute_on(sql, engine).unwrap().rows);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn literal_varying_repeats_are_template_hits_that_rebind_bytecode() {
        let server = Server::new(catalog(200), ServerConfig::default()).unwrap();
        let mut s = server.session();
        s.set_engine(Engine::Vm);
        let sql_a = "select k, count(*) as n from r where v < 150 group by k order by k";
        let sql_b = "select k, count(*) as n from r where v < 170 group by k order by k";
        s.execute(sql_a).unwrap();
        let b = s.execute(sql_b).unwrap();
        // Same template, different constant: a template hit (the pooled
        // bytecode rebinds), not a second full preparation.
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.template_hits, 1, "{stats:?}");
        // The rebound program computes the same answer as the paper's
        // engine evaluating the new query from scratch.
        let mut s2 = server.session();
        let reference = s2.execute_on(sql_b, Engine::Holistic).unwrap();
        assert_eq!(b.rows, reference.rows);
    }

    #[test]
    fn vm_engine_degrades_to_holistic_when_bytecode_cannot_lower() {
        // The VM refuses forced nested-loops joins with a typed
        // `Unsupported`, so `engine=vm` must transparently answer through
        // the holistic engine and count the degradation.
        let mut cat = catalog(60);
        cat.create_table("s", Schema::new(vec![Column::new("k", DataType::Int32)]))
            .unwrap();
        for i in 0..6 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i)]))
                .unwrap();
        }
        cat.analyze_table("s").unwrap();
        let config = ServerConfig {
            force_join_algorithm: Some(hique_plan::JoinAlgorithm::NestedLoops),
            ..ServerConfig::default()
        };
        let server = Server::new(cat, config).unwrap();
        let sql = "select r.k, count(*) as n from r, s where r.k = s.k \
                   group by r.k order by r.k";
        let mut vm = server.session();
        vm.set_engine(Engine::Vm);
        let degraded = vm.execute(sql).unwrap();
        let mut reference = server.session();
        let reference = reference.execute_on(sql, Engine::Holistic).unwrap();
        assert_eq!(degraded.rows, reference.rows);
        assert_eq!(server.vm_fallbacks(), 1);
        assert_eq!(server.queries_served(), 2);
    }

    #[test]
    fn engine_names_round_trip_and_errors_are_typed() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()).unwrap(), e);
        }
        assert!(matches!(
            Engine::parse("volcano"),
            Err(HiqueError::Unsupported(_))
        ));
        let server = Server::new(catalog(10), ServerConfig::default()).unwrap();
        let mut s = server.session();
        assert!(matches!(
            s.execute("select nope from r"),
            Err(HiqueError::Analysis(_))
        ));
        assert!(matches!(s.execute("not sql"), Err(HiqueError::Parse(_))));
    }
}
