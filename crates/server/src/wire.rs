//! The std-only line-based wire protocol.
//!
//! One request per line; one response per request, terminated by a line
//! containing a single `.`:
//!
//! ```text
//! C: select k, count(*) as n from r group by k order by k
//! S: OK 10 2
//! S: k\tn
//! S: 0\t20
//! S: ...
//! S: .
//! C: .engine dsm
//! S: OK engine dsm
//! S: .
//! C: .stats
//! S: OK stats
//! S: cache_hits=3
//! S: ...
//! S: .
//! C: .quit
//! S: OK bye
//! S: .
//! ```
//!
//! Errors are `ERR <layer>: <message>` followed by `.`.  The protocol is
//! deliberately `nc`-compatible: no framing beyond newlines, values
//! tab-separated using the engine's canonical [`Value`] rendering.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hique_types::{HiqueError, QueryResult, Result};

use crate::session::{Engine, Server, Session};

/// How often an idle connection or the accept loop re-checks the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

fn io_err(e: std::io::Error) -> HiqueError {
    HiqueError::Storage(format!("wire i/o: {e}"))
}

/// Serve connections on `listener` until `stop` is set.  Each connection
/// gets its own [`Session`] on its own thread; the call blocks until stop,
/// then joins every connection thread (connections see the flag within one
/// poll interval).
pub fn serve(server: Server, listener: TcpListener, stop: Arc<AtomicBool>) -> Result<()> {
    listener.set_nonblocking(true).map_err(io_err)?;
    let mut workers = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let session = server.session();
                let server = server.clone();
                let stop = Arc::clone(&stop);
                workers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, server, session, stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn write_result(out: &mut impl Write, result: &QueryResult) -> std::io::Result<()> {
    let cols = result.schema.columns();
    writeln!(out, "OK {} {}", result.rows.len(), cols.len())?;
    if !cols.is_empty() {
        let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
        writeln!(out, "{}", names.join("\t"))?;
        for row in &result.rows {
            let vals: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", vals.join("\t"))?;
        }
    }
    writeln!(out, ".")
}

fn write_err(out: &mut impl Write, e: &HiqueError) -> std::io::Result<()> {
    let msg = e.message().replace('\n', " ");
    writeln!(out, "ERR {}: {msg}", e.layer())?;
    writeln!(out, ".")
}

fn handle_connection(
    stream: TcpStream,
    server: Server,
    mut session: Session,
    stop: Arc<AtomicBool>,
) -> Result<()> {
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(io_err)?;
    let mut writer = stream.try_clone().map_err(io_err)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Acquire) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let outcome = if let Some(command) = request.strip_prefix('.') {
            let mut parts = command.split_whitespace();
            match parts.next() {
                Some("quit") => {
                    let _ = writeln!(writer, "OK bye\n.");
                    break;
                }
                Some("engine") => match parts.next().map(Engine::parse) {
                    Some(Ok(engine)) => {
                        session.set_engine(engine);
                        writeln!(writer, "OK engine {}\n.", engine.name()).map_err(io_err)
                    }
                    Some(Err(e)) => write_err(&mut writer, &e).map_err(io_err),
                    None => write_err(
                        &mut writer,
                        &HiqueError::Unsupported(".engine needs an argument".into()),
                    )
                    .map_err(io_err),
                },
                Some("stats") => {
                    let cache = server.cache_stats();
                    writeln!(
                        writer,
                        "OK stats\ncache_hits={}\ncache_misses={}\ncache_entries={}\nqueries={}\nengine={}\n.",
                        cache.hits,
                        cache.misses,
                        cache.entries,
                        server.queries_served(),
                        session.engine().name()
                    )
                    .map_err(io_err)
                }
                _ => write_err(
                    &mut writer,
                    &HiqueError::Unsupported(format!("unknown command '{request}'")),
                )
                .map_err(io_err),
            }
        } else {
            match session.execute(request) {
                Ok(result) => write_result(&mut writer, &result).map_err(io_err),
                Err(e) => write_err(&mut writer, &e).map_err(io_err),
            }
        };
        if outcome.is_err() {
            break; // client went away mid-response
        }
        if writer.flush().is_err() {
            break;
        }
    }
    Ok(())
}

/// One parsed wire response: the status line plus the body lines up to
/// (excluding) the `.` terminator.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// `OK ...` or `ERR ...`.
    pub status: String,
    /// Body lines (for a query: the header line, then one line per row).
    pub lines: Vec<String>,
}

impl WireResponse {
    /// True when the status line starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }

    /// Row lines of a query response (body minus the header line).
    pub fn rows(&self) -> &[String] {
        if self.lines.is_empty() {
            &[]
        } else {
            &self.lines[1..]
        }
    }
}

/// A minimal blocking client for the line protocol (used by the smoke
/// mode, the benchmarks and the tests).
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(WireClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read the full response.
    pub fn request(&mut self, line: &str) -> Result<WireResponse> {
        writeln!(self.writer, "{line}").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut status = String::new();
        if self.reader.read_line(&mut status).map_err(io_err)? == 0 {
            return Err(HiqueError::Storage("server closed the connection".into()));
        }
        let status = status.trim_end().to_string();
        let mut lines = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l).map_err(io_err)? == 0 {
                return Err(HiqueError::Storage(
                    "connection closed before response terminator".into(),
                ));
            }
            let l = l.trim_end().to_string();
            if l == "." {
                break;
            }
            lines.push(l);
        }
        Ok(WireResponse { status, lines })
    }

    /// Convenience: send SQL, error on an `ERR` response.
    pub fn query(&mut self, sql: &str) -> Result<WireResponse> {
        let resp = self.request(sql)?;
        if !resp.is_ok() {
            return Err(HiqueError::Execution(resp.status));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ServerConfig;
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..100 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 5),
                    Value::Float64(i as f64),
                ]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat
    }

    #[test]
    fn queries_commands_and_errors_round_trip_over_tcp() {
        let server = Server::new(catalog(), ServerConfig::default()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let serve_handle = {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(server, listener, stop))
        };

        let mut client = WireClient::connect(addr).unwrap();
        let resp = client
            .query("select k, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(resp.status, "OK 5 2");
        assert_eq!(resp.lines[0], "k\tn");
        assert_eq!(resp.rows().len(), 5);
        assert_eq!(resp.rows()[0], "0\t20");

        // Engine switch changes the executor, not the result.
        let ok = client.request(".engine dsm").unwrap();
        assert_eq!(ok.status, "OK engine dsm");
        let resp2 = client
            .query("select k, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(resp2.rows(), resp.rows());

        // Errors are typed lines, and the connection survives them.
        let err = client.request("select nope from r").unwrap();
        assert!(err.status.starts_with("ERR analysis:"), "{}", err.status);
        let err = client.request(".engine warp").unwrap();
        assert!(err.status.starts_with("ERR unsupported:"), "{}", err.status);

        // Stats reflect the cache hit from the repeated shape.
        let stats = client.request(".stats").unwrap();
        assert!(stats.is_ok());
        assert!(
            stats.lines.iter().any(|l| l == "cache_hits=1"),
            "{:?}",
            stats.lines
        );

        let bye = client.request(".quit").unwrap();
        assert_eq!(bye.status, "OK bye");

        // A second client gets its own session.
        let mut c2 = WireClient::connect(addr).unwrap();
        assert!(c2.query("select k from r where k = 1").is_ok());
        drop(c2);

        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();
        assert_eq!(server.queries_served(), 3);
    }
}
