//! The std-only line-based wire protocol.
//!
//! One request per line; one response per request, terminated by a line
//! containing a single `.`:
//!
//! ```text
//! C: select k, count(*) as n from r group by k order by k
//! S: OK 10 2
//! S: k\tn
//! S: 0\t20
//! S: ...
//! S: .
//! C: .engine dsm
//! S: OK engine dsm
//! S: .
//! C: .stats
//! S: OK stats
//! S: cache_hits=3
//! S: ...
//! S: .
//! C: .quit
//! S: OK bye
//! S: .
//! ```
//!
//! Errors are `ERR <layer>: <message>` followed by `.`.  The protocol is
//! deliberately `nc`-compatible: no framing beyond newlines, values
//! tab-separated using the engine's canonical [`Value`] rendering.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hique_types::{HiqueError, QueryResult, Result};

use crate::session::{Engine, Server, Session};

/// How often an idle connection or the accept loop re-checks the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Longest request line accepted, in bytes.  A longer line gets a typed
/// `ERR` (its excess is discarded) instead of buffering without bound, and
/// the connection stays usable.
const MAX_LINE: usize = 64 * 1024;

fn io_err(e: std::io::Error) -> HiqueError {
    HiqueError::Storage(format!("wire i/o: {e}"))
}

/// Serve connections on `listener` until `stop` is set.  Each connection
/// gets its own [`Session`] on its own thread; the call blocks until stop,
/// then joins every connection thread (connections see the flag within one
/// poll interval).
pub fn serve(server: Server, listener: TcpListener, stop: Arc<AtomicBool>) -> Result<()> {
    listener.set_nonblocking(true).map_err(io_err)?;
    let mut workers = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let session = server.session();
                let server = server.clone();
                let stop = Arc::clone(&stop);
                workers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, server, session, stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    // Drain on shutdown: cancel every in-flight statement so connection
    // threads finish their current response (a typed `ERR cancelled`, not a
    // dropped connection) within one cooperative check, then join them.
    server.cancel_all();
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// Outcome of reading one request line under the size cap.
enum LineRead {
    /// A complete line (without unbounded buffering) sits in the buffer.
    Line,
    /// Client closed (EOF, I/O error, or server stop) — drop the connection.
    Closed,
    /// The line exceeded [`MAX_LINE`]; its excess was discarded.
    TooLong,
}

/// Read one `\n`-terminated request into `buf`, never holding more than
/// ~2×[`MAX_LINE`] bytes, re-polling `stop` across read timeouts.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    buf: &mut Vec<u8>,
) -> LineRead {
    buf.clear();
    loop {
        if stop.load(Ordering::Acquire) {
            return LineRead::Closed;
        }
        match reader
            .by_ref()
            .take(MAX_LINE as u64 + 1)
            .read_until(b'\n', buf)
        {
            // EOF: treat a final unterminated line as a request (so piped
            // input without a trailing newline still works).
            Ok(0) => {
                return if buf.is_empty() {
                    LineRead::Closed
                } else {
                    LineRead::Line
                }
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                return if buf.len() > MAX_LINE {
                    LineRead::TooLong
                } else {
                    LineRead::Line
                }
            }
            Ok(_) if buf.len() > MAX_LINE => {
                // Oversized and still unterminated: discard through to the
                // newline in bounded chunks, then report.
                let mut scratch = Vec::with_capacity(4096);
                loop {
                    if stop.load(Ordering::Acquire) {
                        return LineRead::Closed;
                    }
                    scratch.clear();
                    match reader.by_ref().take(4096).read_until(b'\n', &mut scratch) {
                        Ok(0) => return LineRead::Closed,
                        Ok(_) if scratch.last() == Some(&b'\n') => return LineRead::TooLong,
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => return LineRead::Closed,
                    }
                }
            }
            // The take() limit stopped us mid-line: keep reading.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return LineRead::Closed,
        }
    }
}

fn write_result(out: &mut impl Write, result: &QueryResult) -> std::io::Result<()> {
    let cols = result.schema.columns();
    writeln!(out, "OK {} {}", result.rows.len(), cols.len())?;
    if !cols.is_empty() {
        let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
        writeln!(out, "{}", names.join("\t"))?;
        for row in &result.rows {
            let vals: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", vals.join("\t"))?;
        }
    }
    writeln!(out, ".")
}

fn write_err(out: &mut impl Write, e: &HiqueError) -> std::io::Result<()> {
    let msg = e.message().replace('\n', " ");
    writeln!(out, "ERR {}: {msg}", e.layer())?;
    writeln!(out, ".")
}

fn handle_connection(
    stream: TcpStream,
    server: Server,
    mut session: Session,
    stop: Arc<AtomicBool>,
) -> Result<()> {
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(io_err)?;
    let mut writer = stream.try_clone().map_err(io_err)?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match read_request_line(&mut reader, &stop, &mut buf) {
            LineRead::Closed => break,
            LineRead::TooLong => {
                let e = HiqueError::Parse(format!(
                    "request line exceeds {MAX_LINE} bytes; excess discarded"
                ));
                if write_err(&mut writer, &e).is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
            LineRead::Line => {}
        }
        let request = match std::str::from_utf8(&buf) {
            Ok(s) => s.trim(),
            Err(_) => {
                let e = HiqueError::Parse("request is not valid UTF-8".into());
                if write_err(&mut writer, &e).is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
        };
        if request.is_empty() {
            continue;
        }
        let outcome = if let Some(command) = request.strip_prefix('.') {
            let mut parts = command.split_whitespace();
            match parts.next() {
                Some("quit") => {
                    let _ = writeln!(writer, "OK bye\n.");
                    break;
                }
                Some("engine") => match parts.next().map(Engine::parse) {
                    Some(Ok(engine)) => {
                        session.set_engine(engine);
                        writeln!(writer, "OK engine {}\n.", engine.name()).map_err(io_err)
                    }
                    Some(Err(e)) => write_err(&mut writer, &e).map_err(io_err),
                    None => write_err(
                        &mut writer,
                        &HiqueError::Unsupported(".engine needs an argument".into()),
                    )
                    .map_err(io_err),
                },
                Some("timeout") => match parts.next().map(str::parse::<u64>) {
                    Some(Ok(0)) => {
                        session.set_timeout(None);
                        writeln!(writer, "OK timeout off\n.").map_err(io_err)
                    }
                    Some(Ok(ms)) => {
                        session.set_timeout(Some(Duration::from_millis(ms)));
                        writeln!(writer, "OK timeout {ms}\n.").map_err(io_err)
                    }
                    Some(Err(_)) => write_err(
                        &mut writer,
                        &HiqueError::Parse(".timeout needs milliseconds (0 clears)".into()),
                    )
                    .map_err(io_err),
                    None => write_err(
                        &mut writer,
                        &HiqueError::Unsupported(".timeout needs an argument".into()),
                    )
                    .map_err(io_err),
                },
                Some("stats") => {
                    let cache = server.cache_stats();
                    writeln!(
                        writer,
                        "OK stats\ncache_hits={}\ncache_misses={}\ncache_entries={}\nqueries={}\nqueries_cancelled={}\nvm_fallbacks={}\nengine={}\n.",
                        cache.hits,
                        cache.misses,
                        cache.entries,
                        server.queries_served(),
                        server.queries_cancelled(),
                        server.vm_fallbacks(),
                        session.engine().name()
                    )
                    .map_err(io_err)
                }
                _ => write_err(
                    &mut writer,
                    &HiqueError::Unsupported(format!("unknown command '{request}'")),
                )
                .map_err(io_err),
            }
        } else {
            match session.execute(request) {
                Ok(result) => write_result(&mut writer, &result).map_err(io_err),
                Err(e) => write_err(&mut writer, &e).map_err(io_err),
            }
        };
        if outcome.is_err() {
            break; // client went away mid-response
        }
        if writer.flush().is_err() {
            break;
        }
    }
    Ok(())
}

/// One parsed wire response: the status line plus the body lines up to
/// (excluding) the `.` terminator.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// `OK ...` or `ERR ...`.
    pub status: String,
    /// Body lines (for a query: the header line, then one line per row).
    pub lines: Vec<String>,
}

impl WireResponse {
    /// True when the status line starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }

    /// Row lines of a query response (body minus the header line).
    pub fn rows(&self) -> &[String] {
        if self.lines.is_empty() {
            &[]
        } else {
            &self.lines[1..]
        }
    }
}

/// A minimal blocking client for the line protocol (used by the smoke
/// mode, the benchmarks and the tests).
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(WireClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read the full response.
    pub fn request(&mut self, line: &str) -> Result<WireResponse> {
        writeln!(self.writer, "{line}").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut status = String::new();
        if self.reader.read_line(&mut status).map_err(io_err)? == 0 {
            return Err(HiqueError::Storage("server closed the connection".into()));
        }
        let status = status.trim_end().to_string();
        let mut lines = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l).map_err(io_err)? == 0 {
                return Err(HiqueError::Storage(
                    "connection closed before response terminator".into(),
                ));
            }
            let l = l.trim_end().to_string();
            if l == "." {
                break;
            }
            lines.push(l);
        }
        Ok(WireResponse { status, lines })
    }

    /// Convenience: send SQL, error on an `ERR` response.
    pub fn query(&mut self, sql: &str) -> Result<WireResponse> {
        let resp = self.request(sql)?;
        if !resp.is_ok() {
            return Err(HiqueError::Execution(resp.status));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ServerConfig;
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn catalog_sized(rows: i32) -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..rows {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![
                    Value::Int32(i % 5),
                    Value::Float64(i as f64),
                ]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat
    }

    fn catalog() -> Catalog {
        catalog_sized(100)
    }

    fn start(server: &Server) -> (std::net::SocketAddr, Arc<AtomicBool>, ServeHandle) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(server, listener, stop))
        };
        (addr, stop, handle)
    }

    type ServeHandle = std::thread::JoinHandle<Result<()>>;

    #[test]
    fn queries_commands_and_errors_round_trip_over_tcp() {
        let server = Server::new(catalog(), ServerConfig::default()).unwrap();
        let (addr, stop, serve_handle) = start(&server);

        let mut client = WireClient::connect(addr).unwrap();
        let resp = client
            .query("select k, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(resp.status, "OK 5 2");
        assert_eq!(resp.lines[0], "k\tn");
        assert_eq!(resp.rows().len(), 5);
        assert_eq!(resp.rows()[0], "0\t20");

        // Engine switch changes the executor, not the result.
        let ok = client.request(".engine dsm").unwrap();
        assert_eq!(ok.status, "OK engine dsm");
        let resp2 = client
            .query("select k, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(resp2.rows(), resp.rows());

        // Errors are typed lines, and the connection survives them.
        let err = client.request("select nope from r").unwrap();
        assert!(err.status.starts_with("ERR analysis:"), "{}", err.status);
        let err = client.request(".engine warp").unwrap();
        assert!(err.status.starts_with("ERR unsupported:"), "{}", err.status);

        // Stats reflect the cache hit from the repeated shape.
        let stats = client.request(".stats").unwrap();
        assert!(stats.is_ok());
        assert!(
            stats.lines.iter().any(|l| l == "cache_hits=1"),
            "{:?}",
            stats.lines
        );

        let bye = client.request(".quit").unwrap();
        assert_eq!(bye.status, "OK bye");

        // A second client gets its own session.
        let mut c2 = WireClient::connect(addr).unwrap();
        assert!(c2.query("select k from r where k = 1").is_ok());
        drop(c2);

        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();
        assert_eq!(server.queries_served(), 3);
    }

    /// `engine=vm` on a plan with no bytecode lowering (forced nested
    /// loops) transparently executes via holistic: the wire reply is
    /// byte-identical to `engine=holistic`, and the degradation is visible
    /// only as `vm_fallbacks` in `.stats`.
    #[test]
    fn vm_fallback_reply_is_identical_to_holistic_over_the_wire() {
        let mut cat = catalog();
        cat.create_table("s", Schema::new(vec![Column::new("k", DataType::Int32)]))
            .unwrap();
        for i in 0..5 {
            cat.table_mut("s")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i)]))
                .unwrap();
        }
        cat.analyze_table("s").unwrap();
        let config = ServerConfig {
            force_join_algorithm: Some(hique_plan::JoinAlgorithm::NestedLoops),
            ..ServerConfig::default()
        };
        let server = Server::new(cat, config).unwrap();
        let (addr, stop, serve_handle) = start(&server);

        let mut client = WireClient::connect(addr).unwrap();
        let sql = "select r.k, count(*) as n from r, s where r.k = s.k \
                   group by r.k order by r.k";
        let holistic = client.query(sql).unwrap();
        assert!(holistic.is_ok(), "{}", holistic.status);
        assert!(!holistic.rows().is_empty());

        client.request(".engine vm").unwrap();
        let vm = client.query(sql).unwrap();
        assert_eq!(vm.status, holistic.status);
        assert_eq!(vm.lines, holistic.lines);

        let stats = client.request(".stats").unwrap();
        assert!(
            stats.lines.iter().any(|l| l == "vm_fallbacks=1"),
            "{:?}",
            stats.lines
        );

        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();
        assert_eq!(server.vm_fallbacks(), 1);
    }

    /// Satellite 3: the server survives hostile input — oversized lines,
    /// non-UTF-8 bytes, a mid-statement disconnect, and a `.stats` flood —
    /// answering each abuse with a typed `ERR` (or shrugging it off) while
    /// the next client still gets a clean `OK`.
    #[test]
    fn hostile_wire_input_leaves_the_server_usable() {
        let server = Server::new(catalog(), ServerConfig::default()).unwrap();
        let (addr, stop, serve_handle) = start(&server);

        // Oversized request line: typed ERR, connection stays usable.
        let mut client = WireClient::connect(addr).unwrap();
        let huge = "a".repeat(MAX_LINE + 4096);
        let resp = client.request(&huge).unwrap();
        assert!(resp.status.starts_with("ERR parse:"), "{}", resp.status);
        assert!(resp.status.contains("exceeds"), "{}", resp.status);
        let ok = client.query("select k from r where k = 1").unwrap();
        assert_eq!(ok.rows().len(), 20);

        // Non-UTF-8 bytes: typed ERR on the same connection, which survives.
        {
            let raw = TcpStream::connect(addr).unwrap();
            let mut w = raw.try_clone().unwrap();
            let mut r = BufReader::new(raw);
            w.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
            w.flush().unwrap();
            let mut status = String::new();
            r.read_line(&mut status).unwrap();
            assert!(
                status.starts_with("ERR parse:") && status.contains("UTF-8"),
                "{status}"
            );
            let mut dot = String::new();
            r.read_line(&mut dot).unwrap();
            assert_eq!(dot.trim_end(), ".");
            w.write_all(b".stats\n").unwrap();
            w.flush().unwrap();
            let mut again = String::new();
            r.read_line(&mut again).unwrap();
            assert!(again.starts_with("OK stats"), "{again}");
        }

        // Mid-statement disconnect: a partial line with no newline, then the
        // socket drops.  The server must not wedge or crash.
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"select k from r whe").unwrap();
            raw.flush().unwrap();
        }

        // `.stats` flood from one client.
        for _ in 0..100 {
            assert!(client.request(".stats").unwrap().is_ok());
        }

        // After all of that, a fresh client gets a normal answer.
        let mut c2 = WireClient::connect(addr).unwrap();
        let resp = c2
            .query("select k, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(resp.status, "OK 5 2");

        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();
    }

    /// Tentpole: `.timeout <ms>` installs a per-statement deadline.  A query
    /// that blows the deadline comes back as a typed `ERR cancelled:` on a
    /// connection that stays open, and the cancellation is counted in
    /// `.stats`.  `.timeout 0` clears the deadline.
    #[test]
    fn timeout_command_cancels_a_long_query_with_a_typed_error() {
        // Big enough that scanning it takes well over the 1ms deadline.
        let server = Server::new(catalog_sized(400_000), ServerConfig::default()).unwrap();
        let (addr, stop, serve_handle) = start(&server);

        let mut client = WireClient::connect(addr).unwrap();
        let resp = client.request(".timeout 1").unwrap();
        assert_eq!(resp.status, "OK timeout 1");

        let err = client
            .request("select k, sum(v) as sv, count(*) as n from r group by k order by k")
            .unwrap();
        assert!(err.status.starts_with("ERR cancelled:"), "{}", err.status);

        // The connection survived the cancellation; clearing the deadline
        // lets the same query finish.
        let resp = client.request(".timeout 0").unwrap();
        assert_eq!(resp.status, "OK timeout off");
        let ok = client
            .query("select k, sum(v) as sv, count(*) as n from r group by k order by k")
            .unwrap();
        assert_eq!(ok.rows().len(), 5);

        assert!(server.queries_cancelled() >= 1);
        let stats = client.request(".stats").unwrap();
        assert!(
            stats
                .lines
                .iter()
                .any(|l| l.starts_with("queries_cancelled=") && l != "queries_cancelled=0"),
            "{:?}",
            stats.lines
        );

        // Bad arguments are typed errors, not dropped connections.
        let err = client.request(".timeout soon").unwrap();
        assert!(err.status.starts_with("ERR parse:"), "{}", err.status);
        let err = client.request(".timeout").unwrap();
        assert!(err.status.starts_with("ERR unsupported:"), "{}", err.status);

        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();
    }

    /// Tentpole: shutdown drains in-flight queries by cancelling them.  A
    /// client mid-query during stop gets a typed `ERR cancelled:` response
    /// (not a dropped connection), and serve() returns promptly.
    #[test]
    fn shutdown_drains_in_flight_queries_with_cancellation() {
        let server = Server::new(catalog_sized(400_000), ServerConfig::default()).unwrap();
        let (addr, stop, serve_handle) = start(&server);

        // Warm the plan cache so the in-flight request below spends its time
        // executing (cancellable) rather than planning (not), and reuse the
        // same already-accepted connection for the in-flight statement (a
        // fresh connect could race the accept loop against the stop flag).
        let mut client = WireClient::connect(addr).unwrap();
        client
            .query("select k, sum(v) as sv, count(*) as n from r group by k order by k")
            .unwrap();

        let client_thread = std::thread::spawn(move || {
            client.request("select k, sum(v) as sv, count(*) as n from r group by k order by k")
        });
        // Let the statement get in flight, then stop the server.
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Release);
        serve_handle.join().unwrap().unwrap();

        let resp = client_thread.join().unwrap();
        match resp {
            Ok(resp) => {
                // Either the query finished just before the drain, or it was
                // cancelled with a typed error; both keep the protocol intact.
                assert!(
                    resp.status.starts_with("OK") || resp.status.starts_with("ERR cancelled:"),
                    "{}",
                    resp.status
                );
            }
            Err(e) => panic!("drain must answer, not drop the connection: {e}"),
        }
    }
}
