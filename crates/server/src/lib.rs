//! # hique-server
//!
//! The HIQUE query service: one long-lived process serving N concurrent
//! sessions over **one shared catalog and buffer pool**.
//!
//! The paper's Table III measures per-query preparation cost (code
//! generation, compilation) against execution time — economics that only
//! pay off when preparation is amortized across many requests.  That is
//! this crate's job:
//!
//! * [`Server`] owns the catalog, its paged storage runtime, the DSM
//!   decomposition, and a [`PlanCache`] of prepared plans + instantiated
//!   kernel programs keyed on normalized query shape
//!   ([`hique_plan::shape_key`]);
//! * [`Session`] is one client's handle: it prepares through the shared
//!   cache (first request of a shape pays the Table III cost, every repeat
//!   is a cache hit) and executes on any of the five engine modes;
//! * [`wire`] is the std-only line-based TCP protocol (`hique-server`
//!   binary), usable with nothing but `nc`.
//!
//! Concurrency contracts the storage layer provides (PR 6):
//! per-execution **spill namespaces** (each budgeted execution claims its
//! own temp file behind the shared pool, admission-capped to the session
//! count) and **epoch-tagged peak windows** (each execution's
//! `peak_resident_pages` is its own high-water mark, not a shared
//! clobberable watermark).

#![forbid(unsafe_code)]

pub mod cache;
pub mod session;
pub mod wire;

pub use cache::{CacheStats, PlanCache, PreparedQuery};
pub use session::{Engine, Server, ServerConfig, Session};
pub use wire::{serve, WireClient, WireResponse};
