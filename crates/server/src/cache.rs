//! The class-keyed prepared-plan cache.
//!
//! Maps a query's *shape class* ([`hique_plan::shape_class_and_consts`] —
//! the normalized text with literals masked) to the fully prepared
//! artifact: the optimized plan, the instantiated kernel program
//! ([`GeneratedQuery`]) and the query-time-compiled bytecode
//! ([`hique_vm::VmProgram`]).  Each entry also records the constant
//! vector its plan was prepared for, so a lookup distinguishes two cases:
//!
//! * [`Lookup::Exact`] — same class *and* same constants: the cached
//!   artifact is exact for this query (including literal-dependent
//!   cardinality estimates) and is reused as-is.
//! * [`Lookup::Template`] — same class, different constants: the cached
//!   plan cannot be reused verbatim, but its *pooled* bytecode template
//!   can be rebound to the new constants, skipping kernel lowering.
//!
//! The old literal-preserving key made every literal-varying repeat of a
//! template a full miss (0% hit rate for point-lookup workloads); keying
//! on the class turns those into template hits.  Eviction is LRU over a
//! fixed entry budget; a class's latest constants win its slot.

use std::collections::HashMap;
use std::sync::Arc;

use hique_holistic::GeneratedQuery;
use hique_plan::PhysicalPlan;
use hique_vm::VmProgram;
use parking_lot::Mutex;

/// A fully prepared query: what the paper's Table III calls the
/// preparation cost, paid once per shape and amortized by every reuse.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Normalized query text ([`hique_plan::shape_key`]), literals intact.
    pub shape: String,
    /// Literal-masked template ([`hique_plan::shape_class`]) — the cache
    /// key.
    pub class: String,
    /// The literal texts masked out of `class`, in left-to-right order;
    /// `(class, consts)` is a lossless split of `shape`.
    pub consts: Vec<String>,
    /// The generated kernel program (carries the physical plan).
    pub generated: GeneratedQuery,
    /// Bytecode with this query's constants folded to immediates, for the
    /// `vm` engine.  `None` when the plan has no bytecode lowering.
    pub vm: Option<VmProgram>,
    /// The pooled (constant-free) bytecode template, shared across
    /// literal-varying classmates via [`VmProgram::bind`].
    pub vm_template: Option<Arc<VmProgram>>,
}

impl PreparedQuery {
    /// The optimized physical plan (shared by all five engine modes).
    pub fn plan(&self) -> &PhysicalPlan {
        self.generated.plan()
    }
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// Same class, same constants: the artifact is exact for this query.
    Exact(Arc<PreparedQuery>),
    /// Same class, different constants: re-plan, but rebind the entry's
    /// pooled bytecode template instead of compiling from scratch.
    Template(Arc<PreparedQuery>),
    /// No classmate cached.
    Miss,
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<String, Entry>,
    clock: u64,
    hits: u64,
    template_hits: u64,
    misses: u64,
}

/// Cache hit/miss counters and current size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (exact and template alike).
    pub hits: u64,
    /// The subset of `hits` where only the class matched and the pooled
    /// bytecode template was rebound to new constants.
    pub template_hits: u64,
    /// Lookups that required a fresh preparation.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// A bounded LRU cache of [`PreparedQuery`]s, shared by every session of a
/// server.  All operations take one short-held lock; preparation itself
/// (parse/plan/codegen/bytecode) happens *outside* the lock, so a slow
/// preparation never blocks other sessions' lookups.  Two sessions racing
/// to prepare the same class both succeed; one insert wins and the loser's
/// artifact is simply dropped — correctness does not depend on
/// single-flight.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` prepared classes (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                template_hits: 0,
                misses: 0,
            }),
        }
    }

    /// Look up a shape class with this query's constant vector, counting
    /// a hit (exact or template) or a miss.
    pub fn lookup(&self, class: &str, consts: &[String]) -> Lookup {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(class) {
            Some(entry) => {
                entry.last_used = clock;
                let prepared = Arc::clone(&entry.prepared);
                inner.hits += 1;
                if prepared.consts == consts {
                    Lookup::Exact(prepared)
                } else {
                    inner.template_hits += 1;
                    Lookup::Template(prepared)
                }
            }
            None => {
                inner.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Insert a prepared query under its shape class, evicting the
    /// least-recently-used class when the cache is full.  An existing
    /// entry for the same class is replaced (latest constants win).
    pub fn insert(&self, prepared: Arc<PreparedQuery>) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.entries.contains_key(&prepared.class) && inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(
            prepared.class.clone(),
            Entry {
                prepared,
                last_used: clock,
            },
        );
    }

    /// Hit/miss counters and current size.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            template_hits: inner.template_hits,
            misses: inner.misses,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_plan::{
        plan_query, shape_class_and_consts, shape_key, CatalogProvider, PlannerConfig,
    };
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};

    fn prepared_for(sql: &str, cat: &Catalog) -> Arc<PreparedQuery> {
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(cat)).unwrap();
        let plan = plan_query(&bound, cat, &PlannerConfig::default()).unwrap();
        let generated = hique_holistic::generate(&plan).unwrap();
        let template = hique_vm::compile(&generated, cat, hique_vm::CompileMode::Pooled).unwrap();
        let vm = template.bind(&generated, cat).unwrap();
        let (class, consts) = shape_class_and_consts(sql);
        Arc::new(PreparedQuery {
            shape: shape_key(sql),
            class,
            consts,
            generated,
            vm: Some(vm),
            vm_template: Some(Arc::new(template)),
        })
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..50 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Float64(i as f64)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat
    }

    fn lookup_sql(cache: &PlanCache, sql: &str) -> Lookup {
        let (class, consts) = shape_class_and_consts(sql);
        cache.lookup(&class, &consts)
    }

    #[test]
    fn exact_template_and_miss_are_distinguished() {
        let cat = catalog();
        let cache = PlanCache::new(8);
        let sql = "select k from r where v > 10";
        assert!(matches!(lookup_sql(&cache, sql), Lookup::Miss));
        cache.insert(prepared_for(sql, &cat));
        // A differently formatted spelling of the same query is exact.
        assert!(matches!(
            lookup_sql(&cache, "SELECT k FROM r   WHERE v > 10;"),
            Lookup::Exact(_)
        ));
        // A literal-varying classmate is a template hit, and carries the
        // pooled program the new query can rebind.
        match lookup_sql(&cache, "select k from r where v > 25") {
            Lookup::Template(entry) => {
                let template = entry.vm_template.as_ref().expect("pooled template");
                assert!(template.has_pool_refs());
            }
            _ => panic!("expected a template hit"),
        }
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.template_hits, stats.misses, stats.entries),
            (2, 1, 1, 1)
        );
    }

    #[test]
    fn lru_eviction_keeps_recently_used_classes() {
        let cat = catalog();
        let cache = PlanCache::new(2);
        // Three structurally different queries: literal-varying spellings
        // would share one class (and one slot) by design.
        let q1 = "select k from r where v > 1";
        let q2 = "select v from r where k > 2";
        let q3 = "select k, v from r where v > 3";
        cache.insert(prepared_for(q1, &cat));
        cache.insert(prepared_for(q2, &cat));
        // Touch q1 so q2 becomes the LRU victim.
        assert!(matches!(lookup_sql(&cache, q1), Lookup::Exact(_)));
        cache.insert(prepared_for(q3, &cat));
        assert_eq!(cache.stats().entries, 2);
        assert!(matches!(lookup_sql(&cache, q1), Lookup::Exact(_)));
        assert!(
            matches!(lookup_sql(&cache, q2), Lookup::Miss),
            "LRU victim survived"
        );
        assert!(matches!(lookup_sql(&cache, q3), Lookup::Exact(_)));
    }

    #[test]
    fn reinsert_replaces_the_class_slot() {
        let cat = catalog();
        let cache = PlanCache::new(8);
        cache.insert(prepared_for("select k from r where v > 10", &cat));
        cache.insert(prepared_for("select k from r where v > 99", &cat));
        assert_eq!(cache.stats().entries, 1, "classmates share one slot");
        match lookup_sql(&cache, "select k from r where v > 99") {
            Lookup::Exact(entry) => assert_eq!(entry.consts, vec!["99".to_string()]),
            _ => panic!("latest constants should win the slot"),
        }
    }
}
