//! The shape-keyed prepared-plan cache.
//!
//! Maps a normalized query shape ([`hique_plan::shape_key`]) to the fully
//! prepared artifact: the optimized [`PhysicalPlan`] and the instantiated
//! kernel program ([`GeneratedQuery`]).  Keys preserve literals, so a
//! cached plan is *exact* for its query — including literal-dependent
//! cardinality estimates — while case and whitespace variants of one query
//! share an entry.  Eviction is LRU over a fixed entry budget.

use std::collections::HashMap;

use hique_holistic::GeneratedQuery;
use hique_plan::PhysicalPlan;
use parking_lot::Mutex;

/// A fully prepared query: what the paper's Table III calls the
/// preparation cost, paid once per shape and amortized by every reuse.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Normalized cache key ([`hique_plan::shape_key`]).
    pub shape: String,
    /// Literal-masked template ([`hique_plan::shape_class`]), for grouping
    /// cache statistics — never used as the key.
    pub class: String,
    /// The generated kernel program (carries the physical plan).
    pub generated: GeneratedQuery,
}

impl PreparedQuery {
    /// The optimized physical plan (shared by all four engine modes).
    pub fn plan(&self) -> &PhysicalPlan {
        self.generated.plan()
    }
}

struct Entry {
    prepared: std::sync::Arc<PreparedQuery>,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<String, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Cache hit/miss counters and current size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh preparation.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// A bounded LRU cache of [`PreparedQuery`]s, shared by every session of a
/// server.  All operations take one short-held lock; preparation itself
/// (parse/plan/codegen) happens *outside* the lock, so a slow preparation
/// never blocks other sessions' lookups.  Two sessions racing to prepare
/// the same shape both succeed; one insert wins and the loser's artifact is
/// simply dropped — correctness does not depend on single-flight.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` prepared shapes (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Look up a shape key, counting a hit or miss.
    pub fn get(&self, shape: &str) -> Option<std::sync::Arc<PreparedQuery>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(shape) {
            Some(entry) => {
                entry.last_used = clock;
                let prepared = std::sync::Arc::clone(&entry.prepared);
                inner.hits += 1;
                Some(prepared)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a prepared query under its shape key, evicting the
    /// least-recently-used entry when the cache is full.
    pub fn insert(&self, prepared: std::sync::Arc<PreparedQuery>) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.entries.contains_key(&prepared.shape) && inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(
            prepared.shape.clone(),
            Entry {
                prepared,
                last_used: clock,
            },
        );
    }

    /// Hit/miss counters and current size.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hique_plan::{plan_query, shape_class, shape_key, CatalogProvider, PlannerConfig};
    use hique_storage::Catalog;
    use hique_types::{Column, DataType, Row, Schema, Value};
    use std::sync::Arc;

    fn prepared_for(sql: &str, cat: &Catalog) -> Arc<PreparedQuery> {
        let q = hique_sql::parse_query(sql).unwrap();
        let bound = hique_sql::analyze(&q, &CatalogProvider::new(cat)).unwrap();
        let plan = plan_query(&bound, cat, &PlannerConfig::default()).unwrap();
        Arc::new(PreparedQuery {
            shape: shape_key(sql),
            class: shape_class(sql),
            generated: hique_holistic::generate(&plan).unwrap(),
        })
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int32),
                Column::new("v", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..50 {
            cat.table_mut("r")
                .unwrap()
                .heap
                .append_row(&Row::new(vec![Value::Int32(i), Value::Float64(i as f64)]))
                .unwrap();
        }
        cat.analyze_table("r").unwrap();
        cat
    }

    #[test]
    fn hit_miss_accounting_and_shape_normalization() {
        let cat = catalog();
        let cache = PlanCache::new(8);
        let sql = "select k from r where v > 10";
        assert!(cache.get(&shape_key(sql)).is_none());
        cache.insert(prepared_for(sql, &cat));
        // A differently formatted spelling of the same query hits.
        let variant = "SELECT k FROM r   WHERE v > 10;";
        assert!(cache.get(&shape_key(variant)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_keeps_recently_used_shapes() {
        let cat = catalog();
        let cache = PlanCache::new(2);
        let q1 = "select k from r where v > 1";
        let q2 = "select k from r where v > 2";
        let q3 = "select k from r where v > 3";
        cache.insert(prepared_for(q1, &cat));
        cache.insert(prepared_for(q2, &cat));
        // Touch q1 so q2 becomes the LRU victim.
        assert!(cache.get(&shape_key(q1)).is_some());
        cache.insert(prepared_for(q3, &cat));
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&shape_key(q1)).is_some());
        assert!(cache.get(&shape_key(q2)).is_none(), "LRU victim survived");
        assert!(cache.get(&shape_key(q3)).is_some());
    }
}
