//! `hique-server`: the long-lived HIQUE query daemon.
//!
//! ```text
//! hique-server [--sf F] [--budget-pages N] [--port P] [--sessions N] [--threads N]
//! hique-server --smoke
//! ```
//!
//! Default mode generates a TPC-H fixture at the given scale factor,
//! spills it behind a budgeted buffer pool, and serves the line protocol
//! (see [`hique_server::wire`]) on `--port` until stdin reaches EOF —
//! which makes clean shutdown scriptable (`echo | hique-server ...` or
//! closing the pipe from a supervisor).
//!
//! `--smoke` is the CI entry point: it binds an ephemeral port, runs a
//! battery of real-TCP queries (including repeated shapes, an engine
//! switch, and a deliberate error), verifies the responses and the plan
//! cache counters, shuts the server down cleanly, and exits nonzero on
//! any failure.

#![forbid(unsafe_code)]

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hique_server::{serve, Server, ServerConfig, WireClient};

struct Args {
    sf: f64,
    budget_pages: usize,
    port: u16,
    sessions: usize,
    threads: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sf: 0.01,
            budget_pages: 64,
            port: 5433,
            sessions: 8,
            threads: 1,
            smoke: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sf" => args.sf = value("--sf")?.parse().map_err(|e| format!("--sf: {e}"))?,
            "--budget-pages" => {
                args.budget_pages = value("--budget-pages")?
                    .parse()
                    .map_err(|e| format!("--budget-pages: {e}"))?
            }
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn build_server(args: &Args) -> Result<Server, String> {
    let mut catalog = hique_tpch::generate_into_catalog(args.sf)
        .map_err(|e| format!("fixture generation failed: {e}"))?;
    if args.budget_pages > 0 {
        catalog
            .spill_to_disk(args.budget_pages)
            .map_err(|e| format!("spill_to_disk failed: {e}"))?;
    }
    Server::new(
        catalog,
        ServerConfig {
            max_sessions: args.sessions,
            threads: args.threads,
            memory_budget_pages: 0,
            plan_cache_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("server startup failed: {e}"))
}

fn run_daemon(args: Args) -> Result<(), String> {
    let server = build_server(&args)?;
    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| format!("bind 127.0.0.1:{} failed: {e}", args.port))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let serve_handle = {
        let server = server.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(server, listener, stop))
    };
    eprintln!(
        "hique-server listening on {addr} (sf={}, budget={} pages, max {} sessions); \
         close stdin to stop",
        args.sf, args.budget_pages, args.sessions
    );
    // Block until the controlling process closes our stdin.
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    stop.store(true, Ordering::Release);
    serve_handle
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    let cache = server.cache_stats();
    eprintln!(
        "hique-server stopped: {} queries served, cache {} hits / {} misses",
        server.queries_served(),
        cache.hits,
        cache.misses
    );
    Ok(())
}

fn run_smoke() -> Result<(), String> {
    let args = Args {
        sessions: 4,
        ..Args::default()
    };
    let server = build_server(&args)?;
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("ephemeral bind failed: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let serve_handle = {
        let server = server.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(server, listener, stop))
    };
    eprintln!("smoke: serving on {addr}");

    let result = (|| -> Result<(), String> {
        let mut client = WireClient::connect(addr).map_err(|e| e.to_string())?;
        // The paper's battery over the wire; run each twice so the second
        // pass must hit the plan cache.
        let mut first_pass = Vec::new();
        for pass in 0..2 {
            for (name, sql) in hique_tpch::queries::all_queries() {
                let resp = client
                    .query(sql)
                    .map_err(|e| format!("{name} pass {pass}: {e}"))?;
                if resp.rows().is_empty() {
                    return Err(format!("{name} pass {pass}: empty result"));
                }
                if pass == 0 {
                    first_pass.push((name, resp.rows().to_vec()));
                } else {
                    let (_, baseline) = &first_pass[first_pass
                        .iter()
                        .position(|(n, _)| *n == name)
                        .expect("pass 0 recorded")];
                    if baseline != resp.rows() {
                        return Err(format!("{name}: pass 1 diverged from pass 0"));
                    }
                }
                eprintln!("smoke: {name} pass {pass}: {} rows", resp.rows().len());
            }
        }
        // Same battery on a second connection and a different engine: the
        // cached plans must serve another session too.
        let mut c2 = WireClient::connect(addr).map_err(|e| e.to_string())?;
        let resp = c2
            .request(".engine iter-optimized")
            .map_err(|e| e.to_string())?;
        if !resp.is_ok() {
            return Err(format!("engine switch failed: {}", resp.status));
        }
        for (name, sql) in hique_tpch::queries::all_queries() {
            let resp = c2
                .query(sql)
                .map_err(|e| format!("{name} (iter-optimized): {e}"))?;
            let (_, baseline) = &first_pass[first_pass
                .iter()
                .position(|(n, _)| *n == name)
                .expect("pass 0 recorded")];
            if baseline != resp.rows() {
                return Err(format!("{name}: iter-optimized diverged from holistic"));
            }
        }
        let stats = server.cache_stats();
        eprintln!(
            "smoke: cache {} hits / {} misses, {} queries served",
            stats.hits,
            stats.misses,
            server.queries_served()
        );
        if stats.misses != 3 {
            return Err(format!("expected 3 cache misses, got {}", stats.misses));
        }
        if stats.hits < 6 {
            return Err(format!("expected >= 6 cache hits, got {}", stats.hits));
        }
        // A bad query must produce a typed error and leave the connection
        // usable.
        let err = client
            .request("select no_such_column from lineitem")
            .map_err(|e| e.to_string())?;
        if err.is_ok() {
            return Err("bogus query did not error".to_string());
        }
        let bye = client.request(".quit").map_err(|e| e.to_string())?;
        if bye.status != "OK bye" {
            return Err(format!("quit: {}", bye.status));
        }
        Ok(())
    })();

    stop.store(true, Ordering::Release);
    serve_handle
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| format!("serve loop: {e}"))?;
    result?;
    eprintln!("smoke: OK");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("hique-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.smoke {
        run_smoke()
    } else {
        run_daemon(args)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hique-server: {e}");
            ExitCode::FAILURE
        }
    }
}
