//! TPC-H correctness: Q1, Q3 and Q10 produce identical results on all three
//! engines, and Q1's aggregates match a reference computed directly from the
//! raw lineitem data.

use hique::dsm::DsmDatabase;
use hique::iter::ExecMode;
use hique::plan::{plan_query, CatalogProvider, PlannerConfig};
use hique::storage::Catalog;
use hique::tpch;
use hique::types::tuple::read_value;
use hique::types::{QueryResult, Value};

const SF: f64 = 0.004;

fn plan_for(sql: &str, catalog: &Catalog) -> hique::plan::PhysicalPlan {
    let parsed = hique::sql::parse_query(sql).unwrap();
    let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(catalog)).unwrap();
    plan_query(&bound, catalog, &PlannerConfig::default()).unwrap()
}

fn assert_close(a: &Value, b: &Value, context: &str) {
    match (a.as_f64(), b.as_f64()) {
        (Ok(fa), Ok(fb)) => assert!(
            (fa - fb).abs() <= 1e-6 * (1.0 + fa.abs()),
            "{context}: {fa} vs {fb}"
        ),
        _ => assert_eq!(a, b, "{context}"),
    }
}

fn assert_same_results(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row counts");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        for (va, vb) in ra.values().iter().zip(rb.values()) {
            assert_close(va, vb, context);
        }
    }
}

#[test]
fn all_engines_agree_on_q1_q3_q10() {
    let catalog = tpch::generate_into_catalog(SF).unwrap();
    let db = DsmDatabase::from_catalog(&catalog).unwrap();
    for (name, sql) in tpch::queries::all_queries() {
        let plan = plan_for(sql, &catalog);
        let iter = hique::iter::execute_plan(&plan, &catalog, ExecMode::Optimized).unwrap();
        let dsm = hique::dsm::execute_plan(&plan, &db).unwrap();
        let hiq = hique::holistic::execute_plan(&plan, &catalog).unwrap();
        assert!(hiq.num_rows() > 0, "{name} returned no rows at SF {SF}");
        assert_same_results(&iter, &hiq, &format!("{name}: iterators vs HIQUE"));
        assert_same_results(&dsm, &hiq, &format!("{name}: DSM vs HIQUE"));
    }
}

#[test]
fn q1_matches_a_hand_computed_reference() {
    let catalog = tpch::generate_into_catalog(SF).unwrap();
    let plan = plan_for(tpch::Q1_SQL, &catalog);
    let result = hique::holistic::execute_plan(&plan, &catalog).unwrap();

    // Reference computation straight from the heap.
    let info = catalog.table("lineitem").unwrap();
    let schema = &info.schema;
    let idx = |name: &str| schema.index_of(name).unwrap();
    let cutoff = hique::types::value::parse_date("1998-12-01").unwrap() - 90;
    use std::collections::BTreeMap;
    // (returnflag, linestatus) -> (sum_qty, sum_base, sum_disc, sum_charge, sum_disc_only, count)
    let mut groups: BTreeMap<(String, String), (f64, f64, f64, f64, f64, i64)> = BTreeMap::new();
    for record in info.heap.records() {
        let shipdate = read_value(record, schema, idx("l_shipdate"))
            .as_i64()
            .unwrap() as i32;
        if shipdate > cutoff {
            continue;
        }
        let qty = read_value(record, schema, idx("l_quantity"))
            .as_f64()
            .unwrap();
        let price = read_value(record, schema, idx("l_extendedprice"))
            .as_f64()
            .unwrap();
        let disc = read_value(record, schema, idx("l_discount"))
            .as_f64()
            .unwrap();
        let tax = read_value(record, schema, idx("l_tax")).as_f64().unwrap();
        let rf = read_value(record, schema, idx("l_returnflag")).to_string();
        let ls = read_value(record, schema, idx("l_linestatus")).to_string();
        let e = groups
            .entry((rf, ls))
            .or_insert((0.0, 0.0, 0.0, 0.0, 0.0, 0));
        e.0 += qty;
        e.1 += price;
        e.2 += price * (1.0 - disc);
        e.3 += price * (1.0 - disc) * (1.0 + tax);
        e.4 += disc;
        e.5 += 1;
    }

    assert_eq!(result.num_rows(), groups.len());
    // Output is ordered by (returnflag, linestatus), as is the BTreeMap.
    for (row, ((rf, ls), (qty, base, disc_price, charge, disc_sum, count))) in
        result.rows.iter().zip(groups.iter())
    {
        assert_eq!(row.get(0), &Value::Str(rf.clone()));
        assert_eq!(row.get(1), &Value::Str(ls.clone()));
        assert_close(row.get(2), &Value::Float64(*qty), "sum_qty");
        assert_close(row.get(3), &Value::Float64(*base), "sum_base_price");
        assert_close(row.get(4), &Value::Float64(*disc_price), "sum_disc_price");
        assert_close(row.get(5), &Value::Float64(*charge), "sum_charge");
        assert_close(row.get(6), &Value::Float64(qty / *count as f64), "avg_qty");
        assert_close(
            row.get(7),
            &Value::Float64(base / *count as f64),
            "avg_price",
        );
        assert_close(
            row.get(8),
            &Value::Float64(disc_sum / *count as f64),
            "avg_disc",
        );
        assert_eq!(row.get(9), &Value::Int64(*count), "count_order");
    }
}

#[test]
fn q3_and_q10_respect_their_limits_and_ordering() {
    let catalog = tpch::generate_into_catalog(SF).unwrap();
    for (sql, limit) in [(tpch::Q3_SQL, 10usize), (tpch::Q10_SQL, 20usize)] {
        let plan = plan_for(sql, &catalog);
        let result = hique::holistic::execute_plan(&plan, &catalog).unwrap();
        assert!(result.num_rows() <= limit);
        // revenue column (index 1 in Q3, 2 in Q10) is non-increasing.
        let rev_idx = if sql == tpch::Q3_SQL { 1 } else { 2 };
        let revenues: Vec<f64> = result
            .rows
            .iter()
            .map(|r| r.get(rev_idx).as_f64().unwrap())
            .collect();
        assert!(
            revenues.windows(2).all(|w| w[0] >= w[1] - 1e-9),
            "revenue ordering"
        );
    }
}
