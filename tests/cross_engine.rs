//! Cross-engine equivalence: the iterator, DSM and holistic engines must
//! produce identical results for the same physical plan, across join
//! algorithms, aggregation algorithms and randomized data.

use hique::dsm::DsmDatabase;
use hique::iter::ExecMode;
use hique::plan::{plan_query, AggAlgorithm, CatalogProvider, JoinAlgorithm, PlannerConfig};
use hique::storage::Catalog;
use hique::types::{Column, DataType, QueryResult, Result, Row, Schema, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build_catalog(r_rows: &[(i32, f64, &str)], s_rows: &[(i32, i32)]) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    catalog.create_table(
        "r",
        Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("v", DataType::Float64),
            Column::new("tag", DataType::Char(4)),
        ]),
    )?;
    catalog.create_table(
        "s",
        Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("w", DataType::Int32),
        ]),
    )?;
    for &(k, v, tag) in r_rows {
        catalog.table_mut("r")?.heap.append_row(&Row::new(vec![
            Value::Int32(k),
            Value::Float64(v),
            Value::Str(tag.to_string()),
        ]))?;
    }
    for &(k, w) in s_rows {
        catalog
            .table_mut("s")?
            .heap
            .append_row(&Row::new(vec![Value::Int32(k), Value::Int32(w)]))?;
    }
    catalog.analyze_table("r")?;
    catalog.analyze_table("s")?;
    Ok(catalog)
}

fn run_all_engines(sql: &str, catalog: &Catalog, config: &PlannerConfig) -> Vec<QueryResult> {
    let parsed = hique::sql::parse_query(sql).unwrap();
    let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(catalog)).unwrap();
    let plan = plan_query(&bound, catalog, config).unwrap();
    let db = DsmDatabase::from_catalog(catalog).unwrap();
    vec![
        hique::iter::execute_plan(&plan, catalog, ExecMode::Generic).unwrap(),
        hique::iter::execute_plan(&plan, catalog, ExecMode::Optimized).unwrap(),
        hique::dsm::execute_plan(&plan, &db).unwrap(),
        hique::holistic::execute_plan(&plan, catalog).unwrap(),
    ]
}

/// Compare result row sets, tolerating tiny floating point differences from
/// different accumulation orders.
fn assert_equivalent(results: &[QueryResult], context: &str) {
    let base = &results[0];
    for (i, other) in results.iter().enumerate().skip(1) {
        assert_eq!(
            base.rows.len(),
            other.rows.len(),
            "{context}: engine {i} row count"
        );
        for (a, b) in base.rows.iter().zip(&other.rows) {
            assert_eq!(a.len(), b.len(), "{context}: arity");
            for (va, vb) in a.values().iter().zip(b.values()) {
                match (va.as_f64(), vb.as_f64()) {
                    (Ok(fa), Ok(fb)) => assert!(
                        (fa - fb).abs() <= 1e-6 * (1.0 + fa.abs()),
                        "{context}: engine {i}: {fa} vs {fb}"
                    ),
                    _ => assert_eq!(va, vb, "{context}: engine {i}"),
                }
            }
        }
    }
}

fn default_rows() -> (Vec<(i32, f64, &'static str)>, Vec<(i32, i32)>) {
    let r = (0..500)
        .map(|i| (i % 40, i as f64 * 0.5, if i % 3 == 0 { "aa" } else { "bb" }))
        .collect();
    let s = (0..120).map(|i| (i % 60, i)).collect();
    (r, s)
}

#[test]
fn join_algorithms_agree_across_engines() {
    let (r, s) = default_rows();
    let catalog = build_catalog(&r, &s).unwrap();
    for algo in [
        JoinAlgorithm::Merge,
        JoinAlgorithm::Partition,
        JoinAlgorithm::HybridHashSortMerge,
    ] {
        let results = run_all_engines(
            "select r.k, r.v, s.w from r, s where r.k = s.k order by r.k, r.v, s.w",
            &catalog,
            &PlannerConfig::default().with_join_algorithm(algo),
        );
        assert!(results[0].num_rows() > 0);
        assert_equivalent(&results, &format!("{algo:?}"));
    }
}

#[test]
fn aggregation_algorithms_agree_across_engines() {
    let (r, s) = default_rows();
    let catalog = build_catalog(&r, &s).unwrap();
    for algo in [
        AggAlgorithm::Sort,
        AggAlgorithm::HybridHashSort,
        AggAlgorithm::Map,
    ] {
        let results = run_all_engines(
            "select tag, sum(v) as sv, avg(v) as av, min(v) as mn, max(v) as mx, count(*) as n \
             from r where k < 30 group by tag order by tag",
            &catalog,
            &PlannerConfig::default().with_agg_algorithm(algo),
        );
        assert_eq!(results[0].num_rows(), 2);
        assert_equivalent(&results, &format!("{algo:?}"));
    }
}

#[test]
fn join_plus_aggregation_with_expressions() {
    let (r, s) = default_rows();
    let catalog = build_catalog(&r, &s).unwrap();
    let results = run_all_engines(
        "select r.k, sum(r.v * (1 - 0.05)) as rev, count(*) as n from r, s \
         where r.k = s.k and r.v > 3 group by r.k order by rev desc, r.k limit 7",
        &catalog,
        &PlannerConfig::default(),
    );
    assert_eq!(results[0].num_rows(), 7);
    assert_equivalent(&results, "join+agg+limit");
}

#[test]
fn empty_filter_results_are_consistent() {
    let (r, s) = default_rows();
    let catalog = build_catalog(&r, &s).unwrap();
    let results = run_all_engines(
        "select r.k, s.w from r, s where r.k = s.k and r.v > 100000 order by r.k",
        &catalog,
        &PlannerConfig::default(),
    );
    assert_eq!(results[0].num_rows(), 0);
    assert_equivalent(&results, "empty");
}

/// Randomized data: the holistic engine agrees with the iterator engine on a
/// join + aggregation query for arbitrary key distributions, and the total of
/// per-group COUNT(*) equals the join cardinality. Seeded loop standing in
/// for the original proptest harness (unavailable offline); 16 cases, same
/// key/length distributions.
#[test]
fn engines_agree_on_random_data() {
    let mut rng = SmallRng::seed_from_u64(0xc405_5e17);
    for case in 0..16 {
        let r_keys: Vec<i32> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(0..30i32))
            .collect();
        let s_keys: Vec<i32> = (0..rng.gen_range(1..100usize))
            .map(|_| rng.gen_range(0..30i32))
            .collect();
        let r: Vec<(i32, f64, &str)> = r_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as f64, if i % 2 == 0 { "xx" } else { "yy" }))
            .collect();
        let s: Vec<(i32, i32)> = s_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as i32))
            .collect();
        let catalog = build_catalog(&r, &s).unwrap();
        let results = run_all_engines(
            "select r.k, count(*) as n, sum(s.w) as sw from r, s where r.k = s.k \
             group by r.k order by r.k",
            &catalog,
            &PlannerConfig::default(),
        );
        assert_equivalent(&results, &format!("random case {case}"));

        // Expected join cardinality computed naively.
        let expected: i64 = r_keys
            .iter()
            .map(|rk| s_keys.iter().filter(|sk| *sk == rk).count() as i64)
            .sum();
        let total: i64 = results[0]
            .rows
            .iter()
            .map(|row| row.get(1).as_i64().unwrap())
            .sum();
        assert_eq!(expected, total, "join cardinality, case {case}");
    }
}

/// The sum of SUM(v) over all groups equals the filtered column total,
/// independent of the aggregation algorithm used. Seeded loop standing in
/// for the original proptest harness; 16 cases cycling the algorithms.
#[test]
fn group_sums_partition_the_total() {
    let mut rng = SmallRng::seed_from_u64(0x9a5_0bef);
    for case in 0..16 {
        let keys: Vec<i32> = (0..rng.gen_range(1..300usize))
            .map(|_| rng.gen_range(0..10i32))
            .collect();
        let r: Vec<(i32, f64, &str)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i % 17) as f64, "zz"))
            .collect();
        let catalog = build_catalog(&r, &[(0, 0)]).unwrap();
        let algo = [
            AggAlgorithm::Sort,
            AggAlgorithm::HybridHashSort,
            AggAlgorithm::Map,
        ][case % 3];
        let parsed =
            hique::sql::parse_query("select k, sum(v) as sv from r group by k order by k").unwrap();
        let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(&catalog)).unwrap();
        let plan = plan_query(
            &bound,
            &catalog,
            &PlannerConfig::default().with_agg_algorithm(algo),
        )
        .unwrap();
        let result = hique::holistic::execute_plan(&plan, &catalog).unwrap();
        let total: f64 = result.rows.iter().map(|r| r.get(1).as_f64().unwrap()).sum();
        let expected: f64 = r.iter().map(|(_, v, _)| *v).sum();
        assert!(
            (total - expected).abs() < 1e-6,
            "case {case} ({algo:?}): {total} vs {expected}"
        );
        assert!(result.num_rows() <= 10);
    }
}
