//! End-to-end SQL behaviour through the full pipeline
//! (parse → analyze → optimize → generate → execute).

use hique::plan::{plan_query, CatalogProvider, PlannerConfig};
use hique::storage::Catalog;
use hique::types::{Column, DataType, HiqueError, QueryResult, Result, Row, Schema, Value};

fn catalog() -> Result<Catalog> {
    let mut catalog = Catalog::new();
    catalog.create_table(
        "emp",
        Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("dept", DataType::Int32),
            Column::new("name", DataType::Char(12)),
            Column::new("salary", DataType::Float64),
            Column::new("hired", DataType::Date),
        ]),
    )?;
    catalog.create_table(
        "dept",
        Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("dname", DataType::Char(12)),
        ]),
    )?;
    let names = ["ada", "grace", "edsger", "donald", "barbara"];
    for i in 0..100i32 {
        catalog.table_mut("emp")?.heap.append_row(&Row::new(vec![
            Value::Int32(i),
            Value::Int32(i % 5),
            Value::Str(format!("{}{}", names[(i % 5) as usize], i)),
            Value::Float64(1000.0 + (i * 13 % 500) as f64),
            Value::Date(10_000 + i),
        ]))?;
    }
    for d in 0..5i32 {
        catalog.table_mut("dept")?.heap.append_row(&Row::new(vec![
            Value::Int32(d),
            Value::Str(format!("dept{d}")),
        ]))?;
    }
    catalog.analyze_table("emp")?;
    catalog.analyze_table("dept")?;
    Ok(catalog)
}

fn run(sql: &str, catalog: &Catalog) -> Result<QueryResult> {
    let parsed = hique::sql::parse_query(sql)?;
    let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(catalog))?;
    let plan = plan_query(&bound, catalog, &PlannerConfig::default())?;
    hique::holistic::execute_plan(&plan, catalog)
}

#[test]
fn select_star_and_limit() {
    let catalog = catalog().unwrap();
    let res = run("select * from dept order by id limit 3", &catalog).unwrap();
    assert_eq!(res.num_rows(), 3);
    assert_eq!(res.schema.len(), 2);
    assert_eq!(res.rows[0].get(1), &Value::Str("dept0".into()));
}

#[test]
fn filters_on_every_type() {
    let catalog = catalog().unwrap();
    let res = run(
        "select id from emp where salary >= 1000 and name <> 'ada0' and hired < '1997-06-01' and dept = 2 order by id",
        &catalog,
    )
    .unwrap();
    assert!(res.num_rows() > 0);
    assert!(res.rows.iter().all(|r| r.get(0).as_i64().unwrap() % 5 == 2));
}

#[test]
fn join_group_order_limit_pipeline() {
    let catalog = catalog().unwrap();
    let res = run(
        "select d.dname, count(*) as n, avg(e.salary) as pay from emp e, dept d \
         where e.dept = d.id group by d.dname order by d.dname",
        &catalog,
    )
    .unwrap();
    assert_eq!(res.num_rows(), 5);
    assert!(res.rows.iter().all(|r| r.get(1) == &Value::Int64(20)));
    let text = res.to_text();
    assert!(text.starts_with("d.dname|n|pay"));
}

#[test]
fn arithmetic_in_select_and_aggregates() {
    let catalog = catalog().unwrap();
    let res = run(
        "select dept, sum(salary * (1 + 0.10)) as with_bonus, max(salary) - 0 as mx \
         from emp group by dept order by dept",
        &catalog,
    );
    // max(salary) - 0 is an expression over an aggregate, which the dialect
    // rejects; the plain aggregate version must work.
    assert!(res.is_err());
    let res = run(
        "select dept, sum(salary * (1 + 0.10)) as with_bonus from emp group by dept order by dept",
        &catalog,
    )
    .unwrap();
    assert_eq!(res.num_rows(), 5);
}

#[test]
fn useful_error_messages() {
    let catalog = catalog().unwrap();
    // Unknown table.
    let err = run("select x from missing", &catalog).unwrap_err();
    assert!(matches!(err, HiqueError::Analysis(_)));
    // Unknown column.
    let err = run("select nothere from emp", &catalog).unwrap_err();
    assert!(matches!(err, HiqueError::Analysis(_)));
    // Syntax error.
    let err = run("selec id from emp", &catalog).unwrap_err();
    assert!(matches!(err, HiqueError::Parse(_)));
    // Unsupported: non-equi join.
    let err = run(
        "select e.id from emp e, dept d where e.dept < d.id",
        &catalog,
    )
    .unwrap_err();
    assert!(matches!(err, HiqueError::Unsupported(_)));
    // Cross product without a join predicate.
    let err = run("select e.id from emp e, dept d", &catalog).unwrap_err();
    assert!(matches!(err, HiqueError::Plan(_)));
}

#[test]
fn date_arithmetic_in_predicates() {
    let catalog = catalog().unwrap();
    let all = run("select count(*) as n from emp", &catalog).unwrap();
    assert_eq!(all.rows[0].get(0), &Value::Int64(100));
    // Hire dates span 1997-05-19 .. 1997-08-26; the bound below lands inside
    // that range after subtracting the interval.
    let bounded = run(
        "select count(*) as n from emp where hired <= date '1997-08-01' - interval '30' day",
        &catalog,
    )
    .unwrap();
    let n = bounded.rows[0].get(0).as_i64().unwrap();
    assert!(n > 0 && n < 100);
}

#[test]
fn generated_source_is_inspectable() {
    let catalog = catalog().unwrap();
    let parsed = hique::sql::parse_query(
        "select dept, count(*) as n from emp where salary > 1200 group by dept order by dept",
    )
    .unwrap();
    let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(&catalog)).unwrap();
    let plan = plan_query(&bound, &catalog, &PlannerConfig::default()).unwrap();
    let generated = hique::holistic::generate(&plan).unwrap();
    let src = generated.source().full_text();
    assert!(src.contains("stage_emp"));
    assert!(src.contains("aggregate"));
    assert!(src.contains("evaluate_query"));
    // The emitted filter uses the emp schema's salary offset.
    assert!(src.contains("if (!(*v_"));
}

#[test]
fn impossible_filters_estimate_zero_and_return_empty() {
    // The catalog is analyzed, so the planner's histogram/MCV statistics
    // know the observed domains: a constant outside them estimates zero
    // staged rows, and execution agrees with an empty result.
    let catalog = catalog().unwrap();
    for sql in [
        "select id from emp where dept = 99 order by id",
        "select id from emp where id > 50 and id < 10 order by id",
        "select name from emp where name = 'nobody' order by name",
    ] {
        let parsed = hique::sql::parse_query(sql).unwrap();
        let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(&catalog)).unwrap();
        let plan = plan_query(&bound, &catalog, &PlannerConfig::default()).unwrap();
        assert_eq!(
            plan.staged[0].estimated_rows, 0,
            "{sql}: analyzed stats must recognize an impossible filter"
        );
        let res = hique::holistic::execute_plan(&plan, &catalog).unwrap();
        assert_eq!(res.num_rows(), 0, "{sql}");
    }

    // A possible equality keeps its exact MCV-backed estimate.
    let parsed = hique::sql::parse_query("select id from emp where dept = 3 order by id").unwrap();
    let bound = hique::sql::analyze(&parsed, &CatalogProvider::new(&catalog)).unwrap();
    let plan = plan_query(&bound, &catalog, &PlannerConfig::default()).unwrap();
    assert_eq!(plan.staged[0].estimated_rows, 20);
    let res = hique::holistic::execute_plan(&plan, &catalog).unwrap();
    assert_eq!(res.num_rows(), 20);
}

#[test]
fn self_join_via_aliases_runs_end_to_end() {
    // dept joined with itself through two aliases: every row matches
    // exactly itself on the key, so the join is the identity.
    let catalog = catalog().unwrap();
    let res = run(
        "select a.id, b.dname from dept a, dept b where a.id = b.id order by a.id, b.dname",
        &catalog,
    )
    .unwrap();
    assert_eq!(res.num_rows(), 5);
    assert_eq!(res.rows[0].values()[1], Value::Str("dept0".into()));
    assert_eq!(res.rows[4].values()[0], Value::Int32(4));
}
